/**
 * @file
 * Tests for the request-centric serving API: typed SearchRequest /
 * SearchResponse dispositions, deadline expiry in the admission queue,
 * mixed (k, nprobe) batch parity against serial TieredIndex search,
 * submitMany ordering, EngineBuilder validation, priority-led batch
 * formation, bounded-queue rejection under load, and exact
 * per-disposition accounting in EngineStatsSnapshot.
 */

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/access_profile.h"
#include "core/engine_builder.h"
#include "core/engine_runtime.h"
#include "core/online_update.h"
#include "core/shard_backend.h"
#include "core/tiered_index.h"
#include "vecsearch/ivf_pq_fastscan.h"
#include "vecsearch/kmeans.h"

namespace vlr::core
{
namespace
{

/** Fixed-seed clustered corpus + a trained fast-scan index. */
struct ServingApiFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        Rng rng(77);
        std::vector<float> centers(ncenters_ * d_);
        for (auto &x : centers)
            x = static_cast<float>(rng.uniform(-1.0, 1.0));
        data_.resize(n_ * d_);
        for (std::size_t i = 0; i < n_; ++i) {
            const std::size_t c = rng.uniformU64(ncenters_);
            for (std::size_t j = 0; j < d_; ++j)
                data_[i * d_ + j] =
                    centers[c * d_ + j] +
                    static_cast<float>(rng.gaussian(0.0, 0.15));
        }
        vs::KMeansParams p;
        p.k = nlist_;
        const auto km = vs::kmeansTrain(data_, n_, d_, p);
        cq_ = std::make_shared<vs::FlatCoarseQuantizer>(km.centroids,
                                                        nlist_, d_);
        index_ = std::make_unique<vs::IvfPqFastScanIndex>(cq_, m_);
        index_->train(data_, n_);
        index_->add(data_, n_);

        queries_.resize(nq_ * d_);
        for (std::size_t i = 0; i < nq_; ++i) {
            const std::size_t c = rng.uniformU64(ncenters_);
            for (std::size_t j = 0; j < d_; ++j)
                queries_[i * d_ + j] =
                    centers[c * d_ + j] +
                    static_cast<float>(rng.gaussian(0.0, 0.2));
        }
    }

    /** Skewed synthetic access profile over the index's clusters. */
    AccessProfile
    makeProfile() const
    {
        std::vector<double> counts(nlist_), work(nlist_), bytes(nlist_);
        for (std::size_t c = 0; c < nlist_; ++c) {
            const auto id = static_cast<cluster_id_t>(c);
            counts[c] = static_cast<double>(nlist_ - c);
            work[c] = static_cast<double>(index_->listSize(id));
            bytes[c] = static_cast<double>(index_->listBytes(id));
        }
        return AccessProfile(std::move(counts), std::move(work),
                             std::move(bytes));
    }

    std::span<const float>
    query(std::size_t i) const
    {
        return {queries_.data() + i * d_, d_};
    }

    const std::size_t n_ = 3000;
    const std::size_t d_ = 16;
    const std::size_t m_ = 8;
    const std::size_t ncenters_ = 24;
    const std::size_t nlist_ = 32;
    const std::size_t nq_ = 48;
    std::vector<float> data_;
    std::vector<float> queries_;
    std::shared_ptr<vs::FlatCoarseQuantizer> cq_;
    std::unique_ptr<vs::IvfPqFastScanIndex> index_;
};

// --- Parity gate ------------------------------------------------------

TEST_F(ServingApiFixture, MixedBatchParityAcrossShardsAndCoverage)
{
    // Acceptance gate: a mixed batch of heterogeneous (k, nprobe)
    // requests must return bit-identical hits to per-request serial
    // TieredIndex search, at shard counts {1, 2} x rho {0, 0.25, 1}.
    const auto profile = makeProfile();
    const std::size_t ks[] = {5, 10, 17};
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
        for (const double rho : {0.0, 0.25, 1.0}) {
            TieredIndex tiered(*index_, profile, rho,
                               TieredOptions{shards, {}});
            const auto engine =
                EngineBuilder(tiered)
                    .searchThreads(4)
                    .batching({.maxBatch = 16, .timeoutSeconds = 1e-3})
                    .build();

            std::vector<SearchRequest> requests(nq_);
            for (std::size_t i = 0; i < nq_; ++i) {
                requests[i].query = query(i);
                requests[i].k = ks[i % 3];
                requests[i].nprobe = 1 + (i * 7) % 16;
                requests[i].tag = i;
            }
            auto futures = engine->submitMany(requests);
            engine->drain();

            for (std::size_t i = 0; i < nq_; ++i) {
                const auto r = futures[i].get();
                EXPECT_EQ(r.disposition, Disposition::kServed);
                EXPECT_EQ(r.tag, i);
                EXPECT_EQ(r.k, requests[i].k);
                EXPECT_EQ(r.nprobe, requests[i].nprobe);
                const auto serial =
                    tiered.search(queries_.data() + i * d_,
                                  requests[i].k, requests[i].nprobe);
                ASSERT_EQ(r.hits.size(), serial.size())
                    << "shards " << shards << " rho " << rho
                    << " query " << i;
                for (std::size_t j = 0; j < serial.size(); ++j) {
                    EXPECT_EQ(r.hits[j].id, serial[j].id)
                        << "shards " << shards << " rho " << rho
                        << " query " << i << " rank " << j;
                    EXPECT_EQ(r.hits[j].dist, serial[j].dist)
                        << "shards " << shards << " rho " << rho
                        << " query " << i << " rank " << j;
                }
            }
            const auto s = engine->stats();
            EXPECT_EQ(s.submitted, nq_);
            EXPECT_EQ(s.served, nq_);
            EXPECT_EQ(s.expired + s.rejected, 0u);
        }
    }
}

TEST_F(ServingApiFixture, BatchesNeverMixDifferentK)
{
    // Requests with different k must ride different batches (nprobe
    // may vary within one batch).
    const auto engine = EngineBuilder(*index_)
                            .searchThreads(2)
                            .batching({.maxBatch = 64,
                                       .timeoutSeconds = 20e-3})
                            .build();
    std::vector<SearchRequest> requests(nq_);
    for (std::size_t i = 0; i < nq_; ++i) {
        requests[i].query = query(i);
        requests[i].k = i % 2 == 0 ? 4 : 9;
        requests[i].nprobe = 1 + i % 8;
    }
    auto futures = engine->submitMany(requests);
    engine->drain();
    for (std::size_t i = 0; i < nq_; ++i) {
        const auto r = futures[i].get();
        EXPECT_EQ(r.k, requests[i].k);
        // A batch holding every request of both k groups would exceed
        // the per-k population; batchSize is bounded by it.
        EXPECT_LE(r.batchSize, nq_ / 2);
        EXPECT_LE(r.hits.size(), requests[i].k);
    }
}

// --- Deadlines --------------------------------------------------------

TEST_F(ServingApiFixture, DeadlineExpiresInQueue)
{
    // Long batch timeout + a cap that never fills: queued requests
    // with short deadlines must expire without entering a batch while
    // deadline-free requests are served on drain.
    const auto engine = EngineBuilder(*index_)
                            .searchThreads(2)
                            .batching({.maxBatch = 64,
                                       .timeoutSeconds = 200e-3})
                            .build();

    std::vector<std::future<SearchResponse>> doomed;
    for (std::size_t i = 0; i < 3; ++i) {
        SearchRequest request;
        request.query = query(i);
        request.deadlineSeconds = 3e-3;
        request.tag = 100 + i;
        doomed.push_back(engine->submit(request));
    }
    std::vector<std::future<SearchResponse>> safe;
    for (std::size_t i = 3; i < 6; ++i)
        safe.push_back(engine->submit({.query = query(i)}));

    for (auto &f : doomed) {
        const auto r = f.get(); // resolves at expiry, not the batch
        EXPECT_EQ(r.disposition, Disposition::kExpiredInQueue);
        EXPECT_TRUE(r.hits.empty());
        EXPECT_EQ(r.batchSize, 0u);
        EXPECT_EQ(r.searchSeconds, 0.0);
        EXPECT_GE(r.queueSeconds, 3e-3);
        EXPECT_GE(r.tag, 100u);
    }
    engine->drain();
    for (auto &f : safe) {
        const auto r = f.get();
        EXPECT_EQ(r.disposition, Disposition::kServed);
        EXPECT_FALSE(r.hits.empty());
    }

    const auto s = engine->stats();
    EXPECT_EQ(s.submitted, 6u);
    EXPECT_EQ(s.expired, 3u);
    EXPECT_EQ(s.served, 3u);
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(s.completed, 6u);
    EXPECT_EQ(s.expiredLatency.count, 3u);
}

TEST_F(ServingApiFixture, GenerousDeadlineIsServed)
{
    const auto engine = EngineBuilder(*index_)
                            .searchThreads(2)
                            .batching({.maxBatch = 4,
                                       .timeoutSeconds = 1e-3})
                            .build();
    SearchRequest request;
    request.query = query(0);
    request.deadlineSeconds = 10.0;
    const auto r = engine->submit(request).get();
    EXPECT_EQ(r.disposition, Disposition::kServed);
    EXPECT_FALSE(r.hits.empty());
}

// --- submitMany ordering ---------------------------------------------

TEST_F(ServingApiFixture, SubmitManyPreservesRequestOrder)
{
    // Futures must match requests index-for-index even though the
    // dispatcher regroups by k and priority.
    const auto engine = EngineBuilder(*index_)
                            .searchThreads(4)
                            .batching({.maxBatch = 8,
                                       .timeoutSeconds = 1e-3})
                            .build();
    std::vector<SearchRequest> requests(nq_);
    for (std::size_t i = 0; i < nq_; ++i) {
        requests[i].query = query(i);
        requests[i].k = 3 + i % 5;
        requests[i].nprobe = 1 + i % 11;
        requests[i].priority = static_cast<int>(i % 3);
        requests[i].tag = 1000 + i;
    }
    auto futures = engine->submitMany(requests);
    ASSERT_EQ(futures.size(), requests.size());
    engine->drain();
    for (std::size_t i = 0; i < nq_; ++i) {
        const auto r = futures[i].get();
        EXPECT_EQ(r.tag, 1000 + i) << "future " << i;
        EXPECT_EQ(r.k, requests[i].k) << "future " << i;
        EXPECT_EQ(r.nprobe, requests[i].nprobe) << "future " << i;
        const auto serial = index_->search(queries_.data() + i * d_,
                                           requests[i].k,
                                           requests[i].nprobe);
        ASSERT_EQ(r.hits.size(), serial.size()) << "future " << i;
        for (std::size_t j = 0; j < serial.size(); ++j)
            EXPECT_EQ(r.hits[j].id, serial[j].id)
                << "future " << i << " rank " << j;
    }
}

// --- Priority ---------------------------------------------------------

TEST_F(ServingApiFixture, HigherPriorityLeadsBatchFormation)
{
    // Slow hot tier keeps the dispatcher busy long enough for all
    // submissions to queue; the high-priority pair must then complete
    // before the low-priority pair.
    const auto profile = makeProfile();
    TieredIndex tiered(*index_, profile, 1.0,
                       TieredOptions{1, throttledShardFactory(50e-3)});
    const auto engine = EngineBuilder(tiered)
                            .searchThreads(2)
                            .batching({.maxBatch = 2,
                                       .timeoutSeconds = 1e-3})
                            .build();

    std::mutex order_mutex;
    std::vector<std::uint64_t> completion_order;
    const auto record = [&](SearchResponse r) {
        std::lock_guard<std::mutex> lk(order_mutex);
        completion_order.push_back(r.tag);
    };

    // Warm request occupies the dispatcher in executeBatch (50ms
    // throttle) while the prioritized requests queue up behind it.
    SearchRequest warm;
    warm.query = query(0);
    warm.tag = 0;
    engine->submitAsync(warm, record);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    for (std::size_t i = 0; i < 2; ++i) {
        SearchRequest low;
        low.query = query(1 + i);
        low.priority = 0;
        low.tag = 10 + i;
        engine->submitAsync(low, record);
    }
    for (std::size_t i = 0; i < 2; ++i) {
        SearchRequest high;
        high.query = query(3 + i);
        high.priority = 5;
        high.tag = 20 + i;
        engine->submitAsync(high, record);
    }
    engine->drain();

    ASSERT_EQ(completion_order.size(), 5u);
    std::size_t high_max = 0, low_min = completion_order.size();
    for (std::size_t i = 0; i < completion_order.size(); ++i) {
        if (completion_order[i] >= 20)
            high_max = std::max(high_max, i);
        else if (completion_order[i] >= 10)
            low_min = std::min(low_min, i);
    }
    EXPECT_LT(high_max, low_min)
        << "high-priority requests must complete before low-priority";
}

// --- Bounded admission ------------------------------------------------

TEST_F(ServingApiFixture, BoundedQueueRejectsOnOverflow)
{
    // One-query batches on a 5ms-throttled shard keep the dispatcher
    // saturated; flooding 40 submissions through a 4-deep queue must
    // reject most of them immediately.
    const auto profile = makeProfile();
    TieredIndex tiered(*index_, profile, 1.0,
                       TieredOptions{1, throttledShardFactory(5e-3)});
    const auto engine = EngineBuilder(tiered)
                            .searchThreads(2)
                            .batching({.maxBatch = 1,
                                       .timeoutSeconds = 0.0})
                            .admissionQueueBound(4)
                            .build();

    const std::size_t flood = 40;
    std::vector<std::future<SearchResponse>> futures;
    futures.reserve(flood);
    for (std::size_t i = 0; i < flood; ++i)
        futures.push_back(engine->submit({.query = query(i % nq_)}));
    engine->drain();

    std::size_t served = 0, rejected = 0;
    for (auto &f : futures) {
        const auto r = f.get();
        if (r.disposition == Disposition::kServed) {
            ++served;
            EXPECT_FALSE(r.hits.empty());
        } else {
            EXPECT_EQ(r.disposition, Disposition::kRejected);
            EXPECT_TRUE(r.hits.empty());
            ++rejected;
        }
    }
    EXPECT_GT(rejected, 0u);
    EXPECT_GT(served, 0u);
    EXPECT_EQ(served + rejected, flood);

    const auto s = engine->stats();
    EXPECT_EQ(s.submitted, flood);
    EXPECT_EQ(s.served, served);
    EXPECT_EQ(s.rejected, rejected);
    EXPECT_EQ(s.expired, 0u);
    EXPECT_EQ(s.served + s.expired + s.rejected, s.submitted);
}

// --- submitAsync ------------------------------------------------------

TEST_F(ServingApiFixture, SubmitAsyncInvokesCallbackOnce)
{
    const auto engine = EngineBuilder(*index_)
                            .searchThreads(2)
                            .batching({.maxBatch = 4,
                                       .timeoutSeconds = 1e-3})
                            .build();
    std::promise<SearchResponse> delivered;
    std::atomic<int> calls{0};
    SearchRequest request;
    request.query = query(0);
    request.k = 7;
    request.tag = 42;
    engine->submitAsync(request, [&](SearchResponse r) {
        ++calls;
        delivered.set_value(std::move(r));
    });
    const auto r = delivered.get_future().get();
    engine->drain();
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(r.disposition, Disposition::kServed);
    EXPECT_EQ(r.tag, 42u);
    EXPECT_EQ(r.k, 7u);
    EXPECT_EQ(r.hits.size(), 7u);
}

// --- Builder validation ----------------------------------------------

TEST_F(ServingApiFixture, BuilderRejectsInvalidConfig)
{
    EXPECT_THROW(EngineBuilder(*index_).defaultK(0).build(),
                 std::invalid_argument);
    EXPECT_THROW(EngineBuilder(*index_).defaultNprobe(0).build(),
                 std::invalid_argument);
    // searchThreads(0) is no longer an error: it sizes the pool to the
    // hardware.
    EXPECT_NO_THROW(EngineBuilder(*index_).searchThreads(0).build());
    EXPECT_THROW(EngineBuilder(*index_).sloSearchSeconds(0.0).build(),
                 std::invalid_argument);
    EXPECT_THROW(EngineBuilder(*index_)
                     .batching({.maxBatch = 0, .timeoutSeconds = 1e-3})
                     .build(),
                 std::invalid_argument);
    EXPECT_THROW(EngineBuilder(*index_)
                     .batching({.maxBatch = 8, .timeoutSeconds = -1.0})
                     .build(),
                 std::invalid_argument);
}

TEST_F(ServingApiFixture, BuilderRejectsInconsistentComposition)
{
    const auto profile = makeProfile();
    TieredIndex tiered(*index_, profile, 0.25);

    // rho outside [0, 1].
    EXPECT_THROW(
        EngineBuilder(*index_).tieredFromProfile(profile, 1.5).build(),
        std::invalid_argument);
    // Shard options without a profile-built tier.
    EXPECT_THROW(EngineBuilder(*index_).hotShards(2).build(),
                 std::invalid_argument);
    EXPECT_THROW(EngineBuilder(tiered).hotShards(2).build(),
                 std::invalid_argument);
    // tieredFromProfile on a builder already serving a tiered index.
    EXPECT_THROW(EngineBuilder(tiered)
                     .tieredFromProfile(profile, 0.25)
                     .build(),
                 std::invalid_argument);
    // Updater without a caller-owned tiered index.
    OnlineUpdater updater(tiered, {}, 0.5);
    EXPECT_THROW(EngineBuilder(*index_).updater(&updater).build(),
                 std::invalid_argument);
    // Updater monitoring a different tiered index.
    TieredIndex other(*index_, profile, 0.25);
    EXPECT_THROW(EngineBuilder(other).updater(&updater).build(),
                 std::invalid_argument);
}

TEST_F(ServingApiFixture, BuilderComposesProfileBuiltTier)
{
    const auto profile = makeProfile();
    const auto engine = EngineBuilder(*index_)
                            .tieredFromProfile(profile, 0.25)
                            .hotShards(2)
                            .shardBackend(fastScanShardFactory())
                            .searchThreads(2)
                            .batching({.maxBatch = 8,
                                       .timeoutSeconds = 1e-3})
                            .build();
    ASSERT_NE(engine->tiered(), nullptr);
    EXPECT_EQ(engine->tiered()->numShards(), 2u);
    EXPECT_NEAR(engine->tiered()->rho(), 0.25, 0.05);

    std::vector<std::future<SearchResponse>> futures;
    for (std::size_t i = 0; i < 8; ++i)
        futures.push_back(engine->submit({.query = query(i)}));
    engine->drain();
    for (auto &f : futures)
        EXPECT_EQ(f.get().disposition, Disposition::kServed);
}

TEST_F(ServingApiFixture, SubmitRejectsShortQuerySpan)
{
    const auto engine = EngineBuilder(*index_).build();
    SearchRequest request;
    request.query = std::span<const float>(queries_.data(), d_ - 1);
    EXPECT_THROW(engine->submit(request), std::invalid_argument);
}

} // namespace
} // namespace vlr::core

#include "vecsearch/ivf.h"

#include <cassert>

#include "common/log.h"
#include "vecsearch/kmeans.h"

namespace vlr::vs
{

FlatCoarseQuantizer::FlatCoarseQuantizer(std::vector<float> centroids,
                                         std::size_t nlist, std::size_t dim,
                                         Metric metric)
    : centroids_(std::move(centroids)), nlist_(nlist), dim_(dim),
      metric_(metric)
{
    if (centroids_.size() != nlist_ * dim_)
        fatal("FlatCoarseQuantizer: centroid matrix shape mismatch");
}

ProbeList
FlatCoarseQuantizer::probe(const float *query, std::size_t nprobe) const
{
    nprobe = std::min(nprobe, nlist_);
    TopK topk(nprobe);
    for (std::size_t c = 0; c < nlist_; ++c) {
        const float dist = comparableDistance(
            metric_, query, centroids_.data() + c * dim_, dim_);
        topk.push(static_cast<idx_t>(c), dist);
    }
    ProbeList out;
    for (const auto &h : topk.sortedHits()) {
        out.clusters.push_back(static_cast<cluster_id_t>(h.id));
        out.dists.push_back(h.dist);
    }
    return out;
}

const float *
FlatCoarseQuantizer::centroid(cluster_id_t c) const
{
    assert(c >= 0 && static_cast<std::size_t>(c) < nlist_);
    return centroids_.data() + static_cast<std::size_t>(c) * dim_;
}

IvfFlatIndex::IvfFlatIndex(std::shared_ptr<const CoarseQuantizer> cq,
                           Metric metric)
    : cq_(std::move(cq)), metric_(metric)
{
    assert(cq_);
    ids_.resize(cq_->nlist());
    vecs_.resize(cq_->nlist());
}

void
IvfFlatIndex::add(std::span<const float> vecs, std::size_t n)
{
    const std::size_t d = dim();
    assert(vecs.size() >= n * d);
    for (std::size_t i = 0; i < n; ++i) {
        const float *x = vecs.data() + i * d;
        const auto pl = cq_->probe(x, 1);
        const cluster_id_t c = pl.clusters.at(0);
        ids_[c].push_back(static_cast<idx_t>(total_ + i));
        vecs_[c].insert(vecs_[c].end(), x, x + d);
    }
    total_ += n;
}

void
IvfFlatIndex::addPreassigned(std::span<const float> vecs, std::size_t n,
                             std::span<const std::int32_t> assign)
{
    const std::size_t d = dim();
    assert(vecs.size() >= n * d);
    assert(assign.size() >= n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto c = static_cast<std::size_t>(assign[i]);
        assert(c < ids_.size());
        const float *x = vecs.data() + i * d;
        ids_[c].push_back(static_cast<idx_t>(total_ + i));
        vecs_[c].insert(vecs_[c].end(), x, x + d);
    }
    total_ += n;
}

std::vector<SearchHit>
IvfFlatIndex::search(const float *query, std::size_t k,
                     std::size_t nprobe) const
{
    const auto pl = cq_->probe(query, nprobe);
    return searchClusters(query, k, pl.clusters);
}

std::vector<SearchHit>
IvfFlatIndex::searchClusters(const float *query, std::size_t k,
                             std::span<const cluster_id_t> clusters) const
{
    const std::size_t d = dim();
    TopK topk(k);
    for (const cluster_id_t c : clusters) {
        const auto ci = static_cast<std::size_t>(c);
        assert(ci < ids_.size());
        const auto &list_ids = ids_[ci];
        const float *base = vecs_[ci].data();
        for (std::size_t i = 0; i < list_ids.size(); ++i) {
            const float dist =
                comparableDistance(metric_, query, base + i * d, d);
            topk.push(list_ids[i], dist);
        }
    }
    return topk.sortedHits();
}

std::size_t
IvfFlatIndex::listSize(cluster_id_t c) const
{
    assert(c >= 0 && static_cast<std::size_t>(c) < ids_.size());
    return ids_[static_cast<std::size_t>(c)].size();
}

std::vector<std::size_t>
IvfFlatIndex::listSizes() const
{
    std::vector<std::size_t> out(ids_.size());
    for (std::size_t c = 0; c < ids_.size(); ++c)
        out[c] = ids_[c].size();
    return out;
}

const std::vector<idx_t> &
IvfFlatIndex::listIds(cluster_id_t c) const
{
    assert(c >= 0 && static_cast<std::size_t>(c) < ids_.size());
    return ids_[static_cast<std::size_t>(c)];
}

} // namespace vlr::vs

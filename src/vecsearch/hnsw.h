/**
 * @file
 * Hierarchical Navigable Small World graph (Malkov & Yashunin, 2018).
 *
 * Used in two roles: (1) as a memory-hungry alternative the paper
 * contrasts with IVF (Section II-A), and (2) as the coarse quantizer
 * over IVF centroids (Section IV-A1 notes CQ is "often implemented using
 * memory-intensive graph-based structures such as HNSW").
 */

#ifndef VLR_VECSEARCH_HNSW_H
#define VLR_VECSEARCH_HNSW_H

#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "vecsearch/ivf.h"
#include "vecsearch/metric.h"
#include "vecsearch/topk.h"

namespace vlr::vs
{

struct HnswParams
{
    /** Max neighbors per node at levels > 0; level 0 keeps 2M. */
    std::size_t M = 16;
    std::size_t efConstruction = 100;
    std::size_t efSearch = 64;
    std::uint64_t seed = 42;
};

class Hnsw
{
  public:
    Hnsw(std::size_t dim, HnswParams params = {}, Metric metric = Metric::L2);

    /** Insert one vector; id assigned sequentially. */
    void add(const float *vec);
    void addBatch(std::span<const float> vecs, std::size_t n);

    /** Approximate k-NN; beam width is max(efSearch, k). */
    std::vector<SearchHit> search(const float *query, std::size_t k) const;

    std::size_t size() const { return n_; }
    std::size_t dim() const { return dim_; }
    int maxLevel() const { return maxLevel_; }

    /** Graph memory (edges + levels), excluding raw vectors. */
    std::size_t graphMemoryBytes() const;
    /** Raw vector storage. */
    std::size_t vectorMemoryBytes() const;

  private:
    struct Node
    {
        int level = 0;
        /** neighbors[l] is the adjacency list at layer l. */
        std::vector<std::vector<std::uint32_t>> neighbors;
    };

    float dist(const float *a, const float *b) const;
    const float *vec(std::uint32_t id) const;
    int sampleLevel();

    /** Greedy + beam search within one layer, returns up to ef hits. */
    std::vector<SearchHit> searchLayer(const float *query,
                                       std::uint32_t entry, std::size_t ef,
                                       int level) const;

    void connect(std::uint32_t id, int level,
                 const std::vector<SearchHit> &candidates);

    std::size_t dim_;
    HnswParams params_;
    Metric metric_;
    double levelMult_;
    Rng rng_;

    std::size_t n_ = 0;
    std::vector<float> data_;
    std::vector<Node> nodes_;
    std::uint32_t entryPoint_ = 0;
    int maxLevel_ = -1;

    /** Visit stamps reused across searches (mutable scratch). */
    mutable std::vector<std::uint32_t> visited_;
    mutable std::uint32_t visitStamp_ = 0;
};

/** Coarse quantizer backed by an HNSW graph over the centroids. */
class HnswCoarseQuantizer : public CoarseQuantizer
{
  public:
    HnswCoarseQuantizer(std::vector<float> centroids, std::size_t nlist,
                        std::size_t dim, HnswParams params = {},
                        Metric metric = Metric::L2);

    std::size_t nlist() const override { return nlist_; }
    std::size_t dim() const override { return dim_; }
    ProbeList probe(const float *query, std::size_t nprobe) const override;
    const float *centroid(cluster_id_t c) const override;

    const Hnsw &graph() const { return graph_; }

  private:
    std::vector<float> centroids_;
    std::size_t nlist_;
    std::size_t dim_;
    Hnsw graph_;
};

} // namespace vlr::vs

#endif // VLR_VECSEARCH_HNSW_H

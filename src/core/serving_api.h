/**
 * @file
 * Request-centric serving API types (paper Table I: the SLO belongs to
 * the request, not the engine).
 *
 * A SearchRequest carries everything one query needs — ranking
 * parameters (k, nprobe), an optional queueing deadline, a scheduling
 * priority and an opaque client tag — so the engine can enforce
 * latency at admission instead of auditing it after the fact. A
 * SearchResponse reports the hits together with per-stage timings and
 * a Disposition saying how the request left the engine: served by a
 * batch, expired while queued, or rejected by the bounded admission
 * queue. EngineConfig is the validated engine-wide configuration the
 * EngineBuilder assembles; per-request parameters default to its
 * values when a request leaves them unset.
 */

#ifndef VLR_CORE_SERVING_API_H
#define VLR_CORE_SERVING_API_H

#include <cstdint>
#include <span>
#include <vector>

#include "core/batch_policy.h"
#include "core/shard_backend.h"
#include "vecsearch/ivf_pq_fastscan.h"

namespace vlr::core
{

/** How a submitted request left the engine. Every request resolves
 *  with exactly one disposition. */
enum class Disposition
{
    /** Rode a search batch; hits and stage timings are populated. */
    kServed,
    /** Deadline elapsed while queued; resolved by the dispatcher
     *  without ever entering a search batch. */
    kExpiredInQueue,
    /** Bounced at admission by the bounded queue (BatchPolicy::
     *  maxQueue); resolved immediately on the submitting thread. */
    kRejected,
};

/** Short stable name for logs and bench tables. */
const char *dispositionName(Disposition d);

/**
 * One typed query submission. The query span is copied at submit();
 * the request object itself need not outlive the call.
 */
struct SearchRequest
{
    /** Query vector (at least dim() floats; copied at submit). */
    std::span<const float> query;
    /** Results wanted; 0 means the engine's defaultK. */
    std::size_t k = 0;
    /** IVF lists probed; 0 means the engine's defaultNprobe. */
    std::size_t nprobe = 0;
    /**
     * Queueing deadline in seconds from admission; <= 0 means no
     * deadline. A request still queued when its deadline elapses
     * resolves kExpiredInQueue instead of burning a search slot.
     */
    double deadlineSeconds = 0.0;
    /**
     * Dispatch priority: higher-priority requests lead batch
     * formation. Equal priorities dispatch in admission order; a
     * sustained stream of higher-priority work can delay lower
     * priorities past the batch timeout.
     */
    int priority = 0;
    /** Opaque client tag echoed verbatim in the response. */
    std::uint64_t tag = 0;
};

/** Outcome of one request: disposition + hits + per-stage timings. */
struct SearchResponse
{
    Disposition disposition = Disposition::kServed;
    /** Top-k hits; empty unless disposition == kServed. */
    std::vector<vs::SearchHit> hits;
    /** Admission to batch start (served), to expiry resolution
     *  (expired), or 0 (rejected). */
    double queueSeconds = 0.0;
    /** Batch start to batch completion; 0 unless served. */
    double searchSeconds = 0.0;
    /** Admission to resolution. */
    double totalSeconds = 0.0;
    /** Size of the batch this request rode in; 0 unless served. */
    std::size_t batchSize = 0;
    /** Effective ranking parameters after defaulting. */
    std::size_t k = 0;
    std::size_t nprobe = 0;
    /** Client tag from the request. */
    std::uint64_t tag = 0;

    bool
    served() const
    {
        return disposition == Disposition::kServed;
    }
};

/**
 * Engine-wide configuration assembled by EngineBuilder. validate()
 * rejects nonsense before any thread spins up; per-request k/nprobe
 * override the defaults here.
 */
struct EngineConfig
{
    /** Dispatcher policy shared with ServingConfig (cap, timeout and
     *  the bounded admission queue). */
    BatchPolicy batching{.maxBatch = 64, .timeoutSeconds = 2e-3};
    /** Results per query for requests that leave k unset. */
    std::size_t defaultK = 10;
    /** Probed IVF lists for requests that leave nprobe unset. */
    std::size_t defaultNprobe = 16;
    /** Search worker threads (>= 1; 1 = batch executes inline). */
    std::size_t numSearchThreads = 4;
    /**
     * Retrieval-stage SLO (Table I); tiered batches whose search stage
     * exceeds it are reported to the drift monitor as SLO misses.
     */
    double sloSearchSeconds = 0.150;
    /**
     * Hot shards for engines that build their own TieredIndex
     * (EngineBuilder::tieredFromProfile); ignored when serving a
     * caller-owned index or the flat path.
     */
    std::size_t numHotShards = 1;
    /**
     * Per-shard backend factory for the same path; null means the
     * default in-memory fast-scan replica.
     */
    ShardBackendFactory shardBackendFactory;

    /** @throws std::invalid_argument on an unusable configuration. */
    void validate() const;
};

} // namespace vlr::core

#endif // VLR_CORE_SERVING_API_H

/**
 * @file
 * Umbrella header for the VectorLiteRAG library: include this to get
 * the full public API (substrates + core pipeline).
 */

#ifndef VLR_CORE_VECTORLITERAG_H
#define VLR_CORE_VECTORLITERAG_H

// Substrates
#include "common/beta_dist.h"
#include "common/piecewise_linear.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "llmsim/cluster.h"
#include "llmsim/engine.h"
#include "llmsim/model_config.h"
#include "simcore/simulator.h"
#include "simgpu/gpu_device.h"
#include "simgpu/gpu_spec.h"
#include "simgpu/search_cost.h"
#include "vecsearch/eval.h"
#include "vecsearch/fastscan.h"
#include "vecsearch/flat_index.h"
#include "vecsearch/hnsw.h"
#include "vecsearch/ivf.h"
#include "vecsearch/ivf_pq.h"
#include "vecsearch/io.h"
#include "vecsearch/ivf_pq_fastscan.h"
#include "workload/arrival.h"
#include "workload/dataset.h"
#include "workload/plans.h"
#include "workload/tenant.h"

// Core pipeline
#include "core/access_profile.h"
#include "core/batch_policy.h"
#include "core/batch_search.h"
#include "core/context.h"
#include "core/engine_builder.h"
#include "core/engine_runtime.h"
#include "core/hitrate_estimator.h"
#include "core/online_update.h"
#include "core/partitioner.h"
#include "core/perf_model.h"
#include "core/retriever.h"
#include "core/router.h"
#include "core/serving.h"
#include "core/slo_autopilot.h"
#include "core/splitter.h"
#include "core/tiered_index.h"

#endif // VLR_CORE_VECTORLITERAG_H

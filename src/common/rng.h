/**
 * @file
 * Deterministic random number generation utilities.
 *
 * Everything in the repository that needs randomness goes through Rng so
 * experiments are reproducible from a single seed. The generator is
 * xoshiro256** seeded through splitmix64, matching common practice for
 * fast, high-quality non-cryptographic streams.
 */

#ifndef VLR_COMMON_RNG_H
#define VLR_COMMON_RNG_H

#include <cstdint>
#include <vector>

namespace vlr
{

/**
 * Seedable pseudo-random generator with the distributions the workload
 * and index-training code need: uniform, Gaussian, Zipf and permutations.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; distinct seeds give distinct streams. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t nextU64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0 */
    std::uint64_t uniformU64(std::uint64_t n);

    /** Uniform integer in [lo, hi]. @pre lo <= hi */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (cached second value). */
    double gaussian();

    /** Normal with given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Exponential with given rate (used for Poisson inter-arrivals). */
    double exponential(double rate);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = uniformU64(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Split off an independent generator (for per-thread streams). */
    Rng split();

  private:
    std::uint64_t s_[4];
    double cachedGaussian_;
    bool hasCachedGaussian_;
};

/**
 * Zipf-distributed sampler over ranks {0, .., n-1} with exponent theta.
 *
 * P(rank = k) is proportional to 1 / (k+1)^theta. Sampling is O(log n)
 * by binary search over the precomputed CDF; construction is O(n).
 * theta = 0 degenerates to uniform. Larger theta gives heavier skew;
 * the ORCAS-like workloads use theta around 2.1, Wiki-All-like around 0.7
 * (calibrated in workload/dataset.cc against the paper's Fig. 5 CDFs).
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double theta);

    /** Sample a rank in [0, n). */
    std::size_t sample(Rng &rng) const;

    /** Probability mass of a given rank. */
    double pmf(std::size_t rank) const;

    std::size_t size() const { return cdf_.size(); }
    double theta() const { return theta_; }

  private:
    std::vector<double> cdf_;
    double theta_;
};

} // namespace vlr

#endif // VLR_COMMON_RNG_H

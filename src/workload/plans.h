/**
 * @file
 * Precomputed query plans: each query's probe list from the coarse
 * quantizer plus per-probe scan work. Serving simulations replay plans
 * (pure arithmetic), so a single coarse-quantization pass per dataset
 * serves every system and arrival rate; quality-bearing benches run the
 * real scan code instead.
 */

#ifndef VLR_WORKLOAD_PLANS_H
#define VLR_WORKLOAD_PLANS_H

#include <span>
#include <vector>

#include "common/types.h"
#include "vecsearch/ivf.h"

namespace vlr::wl
{

/** One query's retrieval plan. */
struct QueryPlan
{
    /** Probed clusters sorted by centroid distance. */
    std::vector<cluster_id_t> probes;
    /** Paper-scale scan work (vectors) per probe. */
    std::vector<double> probeWork;
    /** Sum of probeWork. */
    double totalWork = 0.0;
};

/** A pool of plans for a query set. */
class PlanSet
{
  public:
    PlanSet() = default;

    /**
     * Build plans for nq queries.
     * @param work_per_cluster paper-scale vectors of each cluster.
     */
    static PlanSet build(const vs::CoarseQuantizer &cq,
                         std::span<const float> queries, std::size_t nq,
                         std::size_t nprobe,
                         std::span<const double> work_per_cluster);

    const QueryPlan &plan(std::size_t i) const { return plans_.at(i); }
    std::size_t size() const { return plans_.size(); }

    /** Per-cluster access counts over all plans (profiling input). */
    std::vector<double> clusterAccessCounts(std::size_t nlist) const;

    /**
     * Work-weighted hit rate of plan i against a hot-cluster bitmap:
     * fraction of the plan's scan work resident on the hot tier.
     */
    double hitRate(std::size_t i, const std::vector<bool> &hot) const;

    /** Hit rates of every plan (Fig. 6 raw data). */
    std::vector<double> allHitRates(const std::vector<bool> &hot) const;

  private:
    std::vector<QueryPlan> plans_;
};

} // namespace vlr::wl

#endif // VLR_WORKLOAD_PLANS_H

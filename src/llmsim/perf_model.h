/**
 * @file
 * Roofline iteration-time model for LLM serving steps: prefill is
 * compute-bound (2 * active-params FLOPs per token at the device MFU),
 * decode is bandwidth-bound (weights + active KV read per step), with a
 * per-step overhead covering scheduling and tensor-parallel collectives.
 */

#ifndef VLR_LLMSIM_PERF_MODEL_H
#define VLR_LLMSIM_PERF_MODEL_H

#include "llmsim/model_config.h"
#include "simgpu/gpu_spec.h"

namespace vlr::llm
{

class LlmPerfModel
{
  public:
    LlmPerfModel(LlmConfig config, gpu::GpuSpec gpu, int tensor_parallel);

    /** Time of a prefill step processing `tokens` prompt tokens total. */
    double prefillSeconds(std::size_t tokens) const;

    /**
     * Time of one decode step for `batch` sequences with
     * `total_context_tokens` tokens of KV currently attended to.
     */
    double decodeSeconds(std::size_t batch,
                         double total_context_tokens) const;

    /** Fixed per-step overhead (scheduler + collectives). */
    double stepOverheadSeconds() const;

    const LlmConfig &config() const { return config_; }
    int tensorParallel() const { return tp_; }

  private:
    LlmConfig config_;
    gpu::GpuSpec gpu_;
    int tp_;
};

} // namespace vlr::llm

#endif // VLR_LLMSIM_PERF_MODEL_H

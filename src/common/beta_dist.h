/**
 * @file
 * Beta distribution with the order-statistic machinery the paper's
 * hit-rate estimator needs (Section IV-A2).
 *
 * The per-query cache hit rate is modeled as Beta(a, b) fitted from a
 * mean and a variance; the expected minimum hit rate in a batch of size
 * B is the first-order statistic
 *
 *   eta_min(B) = Integral_0^1 B * x * f(x) * (1 - F(x))^(B-1) dx,
 *
 * evaluated numerically (paper Eq. 2).
 */

#ifndef VLR_COMMON_BETA_DIST_H
#define VLR_COMMON_BETA_DIST_H

#include <cstddef>

namespace vlr
{

/**
 * Beta(alpha, beta) distribution on [0, 1]. CDF uses the regularized
 * incomplete beta function via Lentz's continued fraction.
 */
class BetaDistribution
{
  public:
    /** @pre alpha > 0 and beta > 0. */
    BetaDistribution(double alpha, double beta);

    /**
     * Fit from moments: mean in (0, 1), variance in
     * (0, mean*(1-mean)). Variance is clamped into the feasible range,
     * degenerate means are nudged away from {0, 1}.
     */
    static BetaDistribution fromMoments(double mean, double variance);

    double alpha() const { return alpha_; }
    double beta() const { return beta_; }
    double mean() const;
    double variance() const;

    /** Probability density at x in [0, 1]. */
    double pdf(double x) const;

    /** Cumulative distribution function at x. */
    double cdf(double x) const;

    /** Quantile function (inverse CDF) via bisection. */
    double quantile(double p) const;

    /**
     * Expected minimum of batch_size i.i.d. draws (first-order
     * statistic), paper Eq. 2. Evaluated in survival form on a
     * quantile-spaced grid (robust to the pdf singularities of
     * alpha < 1 or beta < 1); exact for batch_size <= 1 (the mean).
     */
    double expectedMin(std::size_t batch_size, std::size_t grid = 512) const;

  private:
    double alpha_;
    double beta_;
    double logBetaFn_;
};

/** Regularized incomplete beta function I_x(a, b). Exposed for tests. */
double regularizedIncompleteBeta(double a, double b, double x);

} // namespace vlr

#endif // VLR_COMMON_BETA_DIST_H

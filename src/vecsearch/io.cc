#include "vecsearch/io.h"

#include <cstdint>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>

#include "vecsearch/fastscan.h"

namespace vlr::vs
{

namespace
{

constexpr std::uint32_t kPqMagic = 0x56505131;    // "VPQ1"
constexpr std::uint32_t kFlatMagic = 0x56464931;  // "VFI1"
constexpr std::uint32_t kCqMagic = 0x56435131;    // "VCQ1"
constexpr std::uint32_t kListsMagic = 0x564C4C31; // "VLL1"

// Upper bounds on header-declared element counts. Far above any real
// artifact, they bound allocations when a corrupt or adversarial header
// declares absurd sizes, so loaders throw IoError instead of attempting
// a multi-terabyte resize.
constexpr std::uint64_t kMaxElems = std::uint64_t{1} << 40;

void
writeU64(std::ostream &os, std::uint64_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeU32(std::ostream &os, std::uint32_t v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

void
writeFloats(std::ostream &os, const float *data, std::size_t n)
{
    os.write(reinterpret_cast<const char *>(data),
             static_cast<std::streamsize>(n * sizeof(float)));
}

std::uint64_t
readU64(std::istream &is)
{
    std::uint64_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is)
        throw IoError("truncated stream");
    return v;
}

std::uint32_t
readU32(std::istream &is)
{
    std::uint32_t v = 0;
    is.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!is)
        throw IoError("truncated stream");
    return v;
}

std::vector<float>
readFloats(std::istream &is, std::uint64_t n, const char *what)
{
    if (n > kMaxElems)
        throw IoError(std::string("implausible element count in ") +
                      what);
    std::vector<float> v(static_cast<std::size_t>(n));
    is.read(reinterpret_cast<char *>(v.data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    if (!is)
        throw IoError(std::string("truncated float payload in ") + what);
    return v;
}

void
expectMagic(std::istream &is, std::uint32_t magic, const char *what)
{
    if (readU32(is) != magic)
        throw IoError(std::string("bad magic for ") + what);
}

std::size_t
listPackedBytes(std::uint64_t count, std::size_t m)
{
    const std::uint64_t nblocks =
        (count + kFastScanBlock - 1) / kFastScanBlock;
    return static_cast<std::size_t>(nblocks * packedBlockBytes(m));
}

std::size_t
segmentBytes(std::uint64_t count, std::size_t m)
{
    return static_cast<std::size_t>(count) * sizeof(idx_t) +
           listPackedBytes(count, m);
}

std::uint64_t
alignUp(std::uint64_t v, std::uint64_t a)
{
    return (v + a - 1) / a * a;
}

PackedListsLayout
computeLayout(const std::vector<std::size_t> &sizes, std::size_t total,
              std::size_t m, std::size_t page_size)
{
    PackedListsLayout layout;
    layout.nlist = sizes.size();
    layout.total = total;
    layout.m = m;
    layout.pageSize = page_size;
    layout.segments.resize(sizes.size());

    const std::uint64_t header_bytes =
        sizeof(std::uint32_t) + 4 * sizeof(std::uint64_t) +
        sizes.size() * 2 * sizeof(std::uint64_t);
    std::uint64_t cursor = alignUp(header_bytes, page_size);
    for (std::size_t c = 0; c < sizes.size(); ++c) {
        if (sizes[c] == 0)
            continue;
        layout.segments[c].offset = cursor;
        layout.segments[c].count = sizes[c];
        cursor = alignUp(cursor + segmentBytes(sizes[c], m), page_size);
    }
    layout.sectionBytes = static_cast<std::size_t>(cursor);
    return layout;
}

void
writeZeros(std::ostream &os, std::uint64_t n)
{
    static constexpr char zeros[4096] = {};
    while (n > 0) {
        const std::uint64_t chunk = n < sizeof(zeros) ? n : sizeof(zeros);
        os.write(zeros, static_cast<std::streamsize>(chunk));
        n -= chunk;
    }
}

} // namespace

void
savePq(std::ostream &os, const ProductQuantizer &pq)
{
    if (!pq.isTrained())
        throw IoError("savePq: quantizer is not trained");
    writeU32(os, kPqMagic);
    writeU64(os, pq.dim());
    writeU64(os, pq.numSub());
    writeU64(os, pq.nbits());
    for (std::size_t s = 0; s < pq.numSub(); ++s) {
        const auto cb = pq.codebook(s);
        writeFloats(os, cb.data(), cb.size());
    }
}

ProductQuantizer
loadPq(std::istream &is)
{
    expectMagic(is, kPqMagic, "ProductQuantizer");
    const std::uint64_t dim = readU64(is);
    const std::uint64_t m = readU64(is);
    const std::uint64_t nbits = readU64(is);
    if (m == 0 || dim == 0 || dim % m != 0 || nbits == 0 || nbits > 8)
        throw IoError("loadPq: invalid dimensions");
    const std::uint64_t ksub = std::uint64_t{1} << nbits;
    auto codebooks = readFloats(is, m * ksub * (dim / m), "PQ codebooks");
    return ProductQuantizer::fromCodebooks(
        static_cast<std::size_t>(dim), static_cast<std::size_t>(m),
        static_cast<std::size_t>(nbits), std::move(codebooks));
}

void
saveFlatIndex(std::ostream &os, const FlatIndex &index)
{
    writeU32(os, kFlatMagic);
    writeU64(os, index.dim());
    writeU32(os, index.metric() == Metric::L2 ? 0 : 1);
    writeU64(os, index.size());
    for (std::size_t i = 0; i < index.size(); ++i)
        writeFloats(os, index.vectorData(static_cast<idx_t>(i)),
                    index.dim());
}

FlatIndex
loadFlatIndex(std::istream &is)
{
    expectMagic(is, kFlatMagic, "FlatIndex");
    const std::uint64_t dim = readU64(is);
    const Metric metric =
        readU32(is) == 0 ? Metric::L2 : Metric::InnerProduct;
    const std::uint64_t n = readU64(is);
    if (dim == 0)
        throw IoError("loadFlatIndex: zero dimension");
    FlatIndex index(static_cast<std::size_t>(dim), metric);
    if (n > 0) {
        const auto data = readFloats(is, n * dim, "flat vectors");
        index.add(data, static_cast<std::size_t>(n));
    }
    return index;
}

void
saveCoarseQuantizer(std::ostream &os, const FlatCoarseQuantizer &cq)
{
    writeU32(os, kCqMagic);
    writeU64(os, cq.nlist());
    writeU64(os, cq.dim());
    writeU32(os, cq.metric() == Metric::L2 ? 0 : 1);
    for (cluster_id_t c = 0; c < static_cast<cluster_id_t>(cq.nlist());
         ++c)
        writeFloats(os, cq.centroid(c), cq.dim());
}

std::shared_ptr<FlatCoarseQuantizer>
loadCoarseQuantizer(std::istream &is)
{
    expectMagic(is, kCqMagic, "FlatCoarseQuantizer");
    const std::uint64_t nlist = readU64(is);
    const std::uint64_t dim = readU64(is);
    const Metric metric =
        readU32(is) == 0 ? Metric::L2 : Metric::InnerProduct;
    if (nlist == 0 || dim == 0)
        throw IoError("loadCoarseQuantizer: zero nlist or dimension");
    auto centroids = readFloats(is, nlist * dim, "CQ centroids");
    return std::make_shared<FlatCoarseQuantizer>(
        std::move(centroids), static_cast<std::size_t>(nlist),
        static_cast<std::size_t>(dim), metric);
}

PackedListsLayout
savePackedLists(std::ostream &os, const IvfPqFastScanIndex &index,
                std::size_t page_size)
{
    if (page_size == 0 || (page_size & (page_size - 1)) != 0)
        throw IoError("savePackedLists: page size is not a power of two");
    const std::size_t m = index.pq().numSub();
    const PackedListsLayout layout = computeLayout(
        index.listSizes(), index.size(), m, page_size);

    writeU32(os, kListsMagic);
    writeU64(os, layout.nlist);
    writeU64(os, layout.total);
    writeU64(os, layout.m);
    writeU64(os, layout.pageSize);
    std::uint64_t cursor =
        sizeof(std::uint32_t) + 4 * sizeof(std::uint64_t);
    for (const ListSegment &seg : layout.segments) {
        writeU64(os, seg.offset);
        writeU64(os, seg.count);
        cursor += 2 * sizeof(std::uint64_t);
    }

    for (std::size_t c = 0; c < layout.nlist; ++c) {
        const ListSegment &seg = layout.segments[c];
        if (seg.count == 0)
            continue;
        writeZeros(os, seg.offset - cursor);
        cursor = seg.offset;
        const auto cid = static_cast<cluster_id_t>(c);
        const auto ids = index.listIds(cid);
        const auto packed = index.listPacked(cid);
        os.write(reinterpret_cast<const char *>(ids.data()),
                 static_cast<std::streamsize>(ids.size_bytes()));
        os.write(reinterpret_cast<const char *>(packed.data()),
                 static_cast<std::streamsize>(packed.size()));
        cursor += ids.size_bytes() + packed.size();
    }
    writeZeros(os, layout.sectionBytes - cursor);
    if (!os)
        throw IoError("savePackedLists: stream write failed");
    return layout;
}

namespace
{

// Header + table validation shared by the stream and buffer readers.
// `limit` is the known section size for bounds checks, or 0 when the
// stream reader does not know it upfront (truncation then surfaces as a
// short read instead).
PackedListsLayout
validateListsHeader(std::uint64_t nlist, std::uint64_t total,
                    std::uint64_t m, std::uint64_t page_size,
                    std::size_t expect_m)
{
    if (nlist == 0 || nlist > kMaxElems)
        throw IoError("packed lists: implausible cluster count");
    if (total > kMaxElems)
        throw IoError("packed lists: implausible vector count");
    if (m == 0 || m != expect_m)
        throw IoError("packed lists: sub-quantizer count mismatch");
    if (page_size == 0 || (page_size & (page_size - 1)) != 0)
        throw IoError("packed lists: page size is not a power of two");
    PackedListsLayout layout;
    layout.nlist = static_cast<std::size_t>(nlist);
    layout.total = static_cast<std::size_t>(total);
    layout.m = static_cast<std::size_t>(m);
    layout.pageSize = static_cast<std::size_t>(page_size);
    return layout;
}

void
validateSegments(PackedListsLayout &layout, std::uint64_t limit)
{
    const std::uint64_t header_bytes =
        sizeof(std::uint32_t) + 4 * sizeof(std::uint64_t) +
        layout.nlist * 2 * sizeof(std::uint64_t);
    std::uint64_t end = alignUp(header_bytes, layout.pageSize);
    std::uint64_t counted = 0;
    for (std::size_t c = 0; c < layout.nlist; ++c) {
        const ListSegment &seg = layout.segments[c];
        if (seg.count == 0) {
            if (seg.offset != 0)
                throw IoError("packed lists: empty cluster with "
                              "nonzero offset");
            continue;
        }
        const std::uint64_t bytes = segmentBytes(seg.count, layout.m);
        if (seg.offset % layout.pageSize != 0 ||
            seg.offset < header_bytes || seg.offset + bytes < seg.offset)
            throw IoError("packed lists: misaligned segment offset");
        if (limit != 0 && seg.offset + bytes > limit)
            throw IoError("packed lists: segment out of bounds "
                          "(truncated section?)");
        if (end < seg.offset + bytes)
            end = seg.offset + bytes;
        counted += seg.count;
    }
    if (counted != layout.total)
        throw IoError("packed lists: segment counts do not sum to "
                      "the declared total");
    layout.sectionBytes =
        static_cast<std::size_t>(alignUp(end, layout.pageSize));
    if (limit != 0 && layout.sectionBytes > limit)
        throw IoError("packed lists: truncated section");
}

} // namespace

PackedLists
loadPackedLists(std::istream &is, std::size_t expect_m)
{
    const std::istream::pos_type base = is.tellg();
    if (base == std::istream::pos_type(-1))
        throw IoError("loadPackedLists: stream is not seekable");
    expectMagic(is, kListsMagic, "packed lists");
    // Sequenced reads: argument evaluation order is unspecified.
    const std::uint64_t nlist = readU64(is);
    const std::uint64_t total = readU64(is);
    const std::uint64_t m = readU64(is);
    const std::uint64_t page_size = readU64(is);
    PackedListsLayout layout =
        validateListsHeader(nlist, total, m, page_size, expect_m);
    layout.segments.resize(layout.nlist);
    for (ListSegment &seg : layout.segments) {
        seg.offset = readU64(is);
        seg.count = readU64(is);
    }
    validateSegments(layout, 0);

    PackedLists out;
    out.ids.resize(layout.nlist);
    out.packed.resize(layout.nlist);
    out.total = layout.total;
    for (std::size_t c = 0; c < layout.nlist; ++c) {
        const ListSegment &seg = layout.segments[c];
        if (seg.count == 0)
            continue;
        is.seekg(base + static_cast<std::istream::off_type>(seg.offset));
        const auto n = static_cast<std::size_t>(seg.count);
        out.ids[c].resize(n);
        is.read(reinterpret_cast<char *>(out.ids[c].data()),
                static_cast<std::streamsize>(n * sizeof(idx_t)));
        out.packed[c].resize(listPackedBytes(seg.count, layout.m));
        is.read(reinterpret_cast<char *>(out.packed[c].data()),
                static_cast<std::streamsize>(out.packed[c].size()));
        if (!is)
            throw IoError("loadPackedLists: truncated cluster segment");
    }
    // Leave the stream positioned at the section end so callers can read
    // whatever follows.
    is.seekg(base +
             static_cast<std::istream::off_type>(layout.sectionBytes));
    if (!is)
        throw IoError("loadPackedLists: truncated section padding");
    return out;
}

PackedListsLayout
parsePackedLists(const std::uint8_t *section, std::size_t section_bytes,
                 std::size_t expect_m)
{
    const std::size_t fixed =
        sizeof(std::uint32_t) + 4 * sizeof(std::uint64_t);
    if (section_bytes < fixed)
        throw IoError("parsePackedLists: truncated header");
    std::uint32_t magic;
    std::memcpy(&magic, section, sizeof(magic));
    if (magic != kListsMagic)
        throw IoError("bad magic for packed lists");
    std::uint64_t hdr[4];
    std::memcpy(hdr, section + sizeof(std::uint32_t), sizeof(hdr));
    PackedListsLayout layout =
        validateListsHeader(hdr[0], hdr[1], hdr[2], hdr[3], expect_m);
    const std::size_t table_bytes =
        layout.nlist * 2 * sizeof(std::uint64_t);
    if (section_bytes < fixed + table_bytes)
        throw IoError("parsePackedLists: truncated offset table");
    layout.segments.resize(layout.nlist);
    std::memcpy(layout.segments.data(), section + fixed, table_bytes);
    static_assert(sizeof(ListSegment) == 2 * sizeof(std::uint64_t),
                  "ListSegment must match its on-disk layout");
    validateSegments(layout, section_bytes);
    return layout;
}

} // namespace vlr::vs

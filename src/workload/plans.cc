#include "workload/plans.h"

#include <cassert>

namespace vlr::wl
{

PlanSet
PlanSet::build(const vs::CoarseQuantizer &cq, std::span<const float> queries,
               std::size_t nq, std::size_t nprobe,
               std::span<const double> work_per_cluster)
{
    const std::size_t d = cq.dim();
    assert(queries.size() >= nq * d);
    assert(work_per_cluster.size() >= cq.nlist());

    PlanSet ps;
    ps.plans_.resize(nq);
    for (std::size_t i = 0; i < nq; ++i) {
        const auto pl = cq.probe(queries.data() + i * d, nprobe);
        QueryPlan &plan = ps.plans_[i];
        plan.probes = pl.clusters;
        plan.probeWork.reserve(plan.probes.size());
        plan.totalWork = 0.0;
        for (const cluster_id_t c : plan.probes) {
            const double w = work_per_cluster[static_cast<std::size_t>(c)];
            plan.probeWork.push_back(w);
            plan.totalWork += w;
        }
    }
    return ps;
}

std::vector<double>
PlanSet::clusterAccessCounts(std::size_t nlist) const
{
    std::vector<double> counts(nlist, 0.0);
    for (const auto &plan : plans_) {
        for (const cluster_id_t c : plan.probes)
            counts[static_cast<std::size_t>(c)] += 1.0;
    }
    return counts;
}

double
PlanSet::hitRate(std::size_t i, const std::vector<bool> &hot) const
{
    const QueryPlan &plan = plans_.at(i);
    if (plan.totalWork <= 0.0)
        return 0.0;
    double hit = 0.0;
    for (std::size_t j = 0; j < plan.probes.size(); ++j) {
        if (hot[static_cast<std::size_t>(plan.probes[j])])
            hit += plan.probeWork[j];
    }
    return hit / plan.totalWork;
}

std::vector<double>
PlanSet::allHitRates(const std::vector<bool> &hot) const
{
    std::vector<double> out(plans_.size());
    for (std::size_t i = 0; i < plans_.size(); ++i)
        out[i] = hitRate(i, hot);
    return out;
}

} // namespace vlr::wl

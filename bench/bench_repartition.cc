/**
 * @file
 * Repartition-under-load bench (paper Fig. 9: updates run in the
 * background). A Zipf query stream drifts mid-run while the tiered
 * engine keeps serving; a static configuration keeps the stale hot set,
 * an adaptive one attaches the OnlineUpdater so drift triggers
 * background multi-shard rebuilds + snapshot swaps. The bench reports
 * per-phase search p50/p99 and the measured hot-probe fraction: the
 * adaptive run should recover the hit rate after drift with a p99
 * comparable to the static run — i.e. snapshot swaps must not stall
 * in-flight batches.
 *
 * Run: ./bench_repartition [num_queries] [--smoke]
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "core/engine_builder.h"
#include "core/engine_runtime.h"
#include "core/online_update.h"
#include "core/tiered_index.h"
#include "workload/dataset.h"

namespace
{

using namespace vlr;

/** Latency digest + hit-rate measurements of one serving phase. */
struct PhaseResult
{
    LatencySummary search;
    double hotProbeFraction = 0.0;
    /** Mean work-weighted hit rate over the phase's queries. */
    double meanHitRate = 0.0;
};

PhaseResult
servePhase(core::RetrievalEngine &engine, const core::TieredIndex &tiered,
           std::span<const float> queries, std::size_t n, std::size_t dim)
{
    const auto before = tiered.stats();
    std::vector<std::future<core::SearchResponse>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        futures.push_back(engine.submit(
            std::span<const float>(queries.data() + i * dim, dim)));
    engine.drain();

    SampleSet samples;
    for (auto &f : futures)
        samples.add(f.get().searchSeconds);
    const auto after = tiered.stats();

    PhaseResult r;
    r.search = summarizeLatency(samples);
    const auto probes = after.totalProbes - before.totalProbes;
    r.hotProbeFraction =
        probes == 0 ? 0.0
                    : static_cast<double>(after.hotProbes -
                                          before.hotProbes) /
                          static_cast<double>(probes);
    const auto queries_served = after.queries - before.queries;
    if (queries_served > 0)
        r.meanHitRate =
            (after.meanHitRate * static_cast<double>(after.queries) -
             before.meanHitRate * static_cast<double>(before.queries)) /
            static_cast<double>(queries_served);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vlr;

    const auto args = bench::parseBenchArgs(argc, argv,
                                            /*default_queries=*/4000,
                                            /*smoke_queries=*/600,
                                            /*min_queries=*/2);
    if (!args.ok) {
        std::cerr << "usage: bench_repartition [num_queries >= 2] "
                     "[--smoke]\n";
        return 1;
    }
    const std::size_t n_phase = args.numQueries / 2;

    std::cout << "Repartition-under-load bench"
              << (args.smoke ? " (smoke mode)" : "") << "\n"
              << "============================\n\n";

    // --- corpus + index ------------------------------------------------
    wl::DatasetSpec spec = wl::tinySpec();
    spec.numVectors = args.smoke ? 8000 : 40000;
    spec.dim = 64;
    spec.numClusters = args.smoke ? 64 : 256;
    spec.nprobe = 16;
    wl::SyntheticDataset dataset(spec);
    dataset.buildVectors();
    const auto cq = dataset.makeCoarseQuantizer();
    vs::IvfPqFastScanIndex index(cq, spec.dim / 4);
    index.train(dataset.vectors(), spec.numVectors);
    index.addPreassigned(dataset.vectors(), spec.numVectors,
                         dataset.assignments());

    const double rho = 0.25;
    const std::size_t num_shards = 2;
    std::cout << "index: " << index.size() << " vectors, nlist "
              << index.nlist() << "; hot tier rho=" << rho << " across "
              << num_shards << " shards; drift after " << n_phase
              << " queries\n\n";

    TextTable t({"config", "phase", "p50 srch (ms)", "p99 srch (ms)",
                 "mean hit", "hot probes", "rebuilds"});

    for (const bool adaptive : {false, true}) {
        // Identical streams per config: same calibration + drift seeds.
        wl::QueryGenerator gen(dataset, 123);
        const std::size_t n_cal = args.smoke ? 400 : 1500;
        const auto cal = gen.generate(n_cal);
        std::vector<double> work(spec.numClusters);
        for (std::size_t c = 0; c < spec.numClusters; ++c)
            work[c] = static_cast<double>(dataset.clusterSizes()[c]) *
                      spec.scaleFactor();
        const auto plans =
            wl::PlanSet::build(*cq, cal, n_cal, spec.nprobe, work);
        const auto profile =
            core::AccessProfile::fromPlans(plans, dataset);
        const core::HitRateEstimator estimator(profile, plans);

        core::TieredOptions topts;
        topts.numShards = num_shards;
        core::TieredIndex tiered(index, profile, rho, topts);

        const auto engine =
            core::EngineBuilder(tiered)
                .defaultK(10)
                .defaultNprobe(spec.nprobe)
                .searchThreads(4)
                .batching({.maxBatch = 32, .timeoutSeconds = 1e-3})
                .build();

        core::OnlineUpdater::Options uopts;
        uopts.rho = rho;
        // At this reduced scale a popularity reshuffle moves the mean
        // hit rate by a few points, not the paper's tens: trigger on a
        // 3-point divergence from the estimator's per-query-mean
        // prediction (the same semantics the engine records).
        uopts.drift.hitRateDivergence = 0.03;
        // The engine records one observation per *batch*; keep the
        // window small enough to fill (and re-trigger) within a phase.
        uopts.drift.windowRequests = args.smoke ? 16 : 32;
        // Gate the rebuild on hit-rate divergence alone: at this
        // reduced scale searches always meet the paper-scale SLO, so
        // an attainment threshold above 1 keeps the second drift
        // condition permanently satisfied.
        uopts.drift.attainmentThreshold = 1.01;
        std::unique_ptr<core::OnlineUpdater> updater;
        if (adaptive) {
            updater = std::make_unique<core::OnlineUpdater>(
                tiered, uopts, estimator.meanHitRate(rho));
            engine->attachUpdater(updater.get());
        }

        const char *label = adaptive ? "adaptive" : "static";

        const auto pre_queries = gen.generate(n_phase);
        const auto pre = servePhase(*engine, tiered, pre_queries, n_phase,
                                    spec.dim);
        t.addRow({label, "pre-drift",
                  TextTable::num(pre.search.p50 * 1e3, 2),
                  TextTable::num(pre.search.p99 * 1e3, 2),
                  TextTable::pct(pre.meanHitRate),
                  TextTable::pct(pre.hotProbeFraction),
                  adaptive ? std::to_string(
                                 updater->rebuildsCompleted())
                           : "-"});

        // Shift popularity for most clusters: the calibrated hot set
        // goes stale.
        gen.drift(0.9);
        const auto post_queries = gen.generate(n_phase);
        const auto post = servePhase(*engine, tiered, post_queries,
                                     n_phase, spec.dim);
        if (updater)
            updater->waitForRebuild();
        t.addRow({label, "post-drift",
                  TextTable::num(post.search.p50 * 1e3, 2),
                  TextTable::num(post.search.p99 * 1e3, 2),
                  TextTable::pct(post.meanHitRate),
                  TextTable::pct(post.hotProbeFraction),
                  adaptive ? std::to_string(
                                 updater->rebuildsCompleted())
                           : "-"});

        // Same drifted stream once more: the adaptive config now
        // serves it from the rebuilt placement.
        const auto rec_queries = gen.generate(n_phase);
        const auto rec = servePhase(*engine, tiered, rec_queries, n_phase,
                                    spec.dim);
        if (updater)
            updater->waitForRebuild();
        t.addRow({label, "recovered",
                  TextTable::num(rec.search.p50 * 1e3, 2),
                  TextTable::num(rec.search.p99 * 1e3, 2),
                  TextTable::pct(rec.meanHitRate),
                  TextTable::pct(rec.hotProbeFraction),
                  adaptive ? std::to_string(
                                 updater->rebuildsCompleted())
                           : "-"});
    }
    t.print(std::cout);

    std::cout
        << "\n'hot probes' is the fraction of probes served by the hot "
           "shards in each\nphase. After drift the static config keeps "
           "the stale placement; the\nadaptive config's OnlineUpdater "
           "drains live access counts and rebuilds\nall shards on a "
           "background thread — p99 should stay comparable because\n"
           "in-flight batches keep searching the old snapshot until the "
           "atomic swap\n(paper Fig. 9's background-update claim).\n";
    return 0;
}

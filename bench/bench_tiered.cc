/**
 * @file
 * Tiered-engine bench: hot-fraction and latency sweep of the live
 * hot/cold TieredIndex against the single-tier engine on the same
 * trained index and Zipf-skewed query stream. For each coverage rho the
 * bench reports engine throughput, search-latency percentiles, the
 * fraction of queries served entirely by the hot tier (cold tier
 * skipped via pruned routing), and the *measured* work-weighted hot hit
 * fraction next to the HitRateEstimator's calibration-time prediction —
 * the live analogue of the paper's Fig. 6 hit-rate model. A second
 * sweep scales the hot tier across shard counts and backends
 * (fast-scan replica vs the throttled slow-device double), reporting
 * per-shard probe balance from the multi-shard router.
 *
 * Run: ./bench_tiered [num_queries] [--smoke]
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/engine_builder.h"
#include "core/engine_runtime.h"
#include "core/tiered_index.h"
#include "workload/dataset.h"

int
main(int argc, char **argv)
{
    using namespace vlr;

    const auto args = bench::parseBenchArgs(argc, argv,
                                            /*default_queries=*/2000,
                                            /*smoke_queries=*/300);
    if (!args.ok) {
        std::cerr << "bench_tiered: " << args.error << "\n"
                  << "usage: bench_tiered [num_queries >= 1] "
                     "[--smoke]\n";
        return 1;
    }
    const std::size_t n_queries = args.numQueries;

    std::cout << "Tiered hot/cold engine bench"
              << (args.smoke ? " (smoke mode)" : "") << "\n"
              << "============================\n\n";

    // --- corpus + index (real vectors, Zipf-skewed query popularity) ---
    wl::DatasetSpec spec = wl::tinySpec();
    spec.numVectors = args.smoke ? 8000 : 40000;
    spec.dim = 64;
    spec.numClusters = args.smoke ? 64 : 256;
    spec.nprobe = 16;
    wl::SyntheticDataset dataset(spec);
    dataset.buildVectors();
    const auto cq = dataset.makeCoarseQuantizer();
    vs::IvfPqFastScanIndex index(cq, spec.dim / 4);
    index.train(dataset.vectors(), spec.numVectors);
    index.addPreassigned(dataset.vectors(), spec.numVectors,
                         dataset.assignments());
    std::cout << "index: " << index.size() << " vectors, dim "
              << index.dim() << ", nlist " << index.nlist() << ", simd "
              << (vs::fastScanHasSimd() ? "avx2" : "scalar")
              << ", query zipf " << spec.queryZipf << "\n\n";

    // --- calibration: profile access skew, fit the hit-rate model ---
    wl::QueryGenerator gen(dataset, 123);
    const std::size_t n_cal = args.smoke ? 400 : 1500;
    const auto cal_queries = gen.generate(n_cal);
    std::vector<double> work(spec.numClusters);
    for (std::size_t c = 0; c < spec.numClusters; ++c)
        work[c] = static_cast<double>(dataset.clusterSizes()[c]) *
                  spec.scaleFactor();
    const auto plans = wl::PlanSet::build(*cq, cal_queries, n_cal,
                                          spec.nprobe, work);
    const auto profile = core::AccessProfile::fromPlans(plans, dataset);
    const core::HitRateEstimator estimator(profile, plans);

    const auto queries = gen.generate(n_queries);
    const std::size_t k = 10;

    const auto make_builder = [&](core::EngineBuilder builder) {
        return builder.defaultK(k)
            .defaultNprobe(spec.nprobe)
            .searchThreads(4)
            .batching({.maxBatch = 32, .timeoutSeconds = 1e-3})
            .build();
    };

    const auto run_engine = [&](core::RetrievalEngine &engine) {
        WallTimer wall;
        std::vector<std::future<core::SearchResponse>> futures;
        futures.reserve(n_queries);
        for (std::size_t i = 0; i < n_queries; ++i)
            futures.push_back(engine.submit(
                {.query = std::span<const float>(
                     queries.data() + i * spec.dim, spec.dim)}));
        engine.drain();
        const double secs = wall.elapsed();
        for (auto &f : futures)
            f.get();
        return secs;
    };

    TextTable t({"system", "hot", "hot MB", "QPS", "p50 srch (ms)",
                 "p99 srch (ms)", "hot-only", "hit meas", "hit pred"});

    struct RhoRow
    {
        double rho = 0.0;
        std::size_t numHot = 0;
        double hotBytes = 0.0;
        double qps = 0.0;
        double p50Search = 0.0;
        double p99Search = 0.0;
        double hotOnlyFraction = 0.0;
        double hitMeasured = 0.0;
        double hitPredicted = 0.0;
    };
    std::vector<RhoRow> rho_rows;
    struct ShardRow
    {
        std::string backend;
        std::size_t shards = 0;
        double qps = 0.0;
        double p50Search = 0.0;
        double p99Search = 0.0;
        double probeBalance = 0.0;
    };
    std::vector<ShardRow> shard_rows;
    double flat_qps = 0.0, flat_p50 = 0.0, flat_p99 = 0.0;

    // Single-tier baseline: the flat engine.
    {
        const auto engine = make_builder(core::EngineBuilder(index));
        const double secs = run_engine(*engine);
        const auto s = engine->stats();
        flat_qps = static_cast<double>(s.completed) / secs;
        flat_p50 = s.searchLatency.p50;
        flat_p99 = s.searchLatency.p99;
        t.addRow({"flat", "-", "-",
                  TextTable::num(static_cast<double>(s.completed) / secs,
                                 0),
                  TextTable::num(s.searchLatency.p50 * 1e3, 2),
                  TextTable::num(s.searchLatency.p99 * 1e3, 2), "-", "-",
                  "-"});
    }

    const std::vector<double> rhos =
        args.smoke ? std::vector<double>{0.0, 0.25, 1.0}
                   : std::vector<double>{0.0, 0.1, 0.25, 0.5, 0.75, 1.0};
    for (const double rho : rhos) {
        core::TieredIndex tiered(index, profile, rho);
        const auto engine = make_builder(core::EngineBuilder(tiered));
        const double secs = run_engine(*engine);
        const auto s = engine->stats();
        const auto ts = tiered.stats();
        rho_rows.push_back(
            {rho, ts.numHot, static_cast<double>(ts.hotBytes),
             static_cast<double>(s.completed) / secs,
             s.searchLatency.p50, s.searchLatency.p99,
             ts.queries == 0
                 ? 0.0
                 : static_cast<double>(ts.hotOnlyQueries) /
                       static_cast<double>(ts.queries),
             ts.meanHitRate, estimator.meanHitRate(rho)});
        t.addRow({"rho=" + TextTable::num(rho, 2),
                  std::to_string(ts.numHot),
                  TextTable::num(static_cast<double>(ts.hotBytes) / 1e6,
                                 1),
                  TextTable::num(static_cast<double>(s.completed) / secs,
                                 0),
                  TextTable::num(s.searchLatency.p50 * 1e3, 2),
                  TextTable::num(s.searchLatency.p99 * 1e3, 2),
                  TextTable::pct(
                      ts.queries == 0
                          ? 0.0
                          : static_cast<double>(ts.hotOnlyQueries) /
                                static_cast<double>(ts.queries)),
                  TextTable::pct(ts.meanHitRate),
                  TextTable::pct(estimator.meanHitRate(rho))});
    }
    t.print(std::cout);

    std::cout
        << "\n'hot-only' is the fraction of queries whose probe list was "
           "fully\nhot-resident (cold tier skipped by the pruned "
           "router); 'hit meas' is the\nlive work-weighted hot hit rate "
           "and 'hit pred' the HitRateEstimator's\ncalibration-time "
           "prediction at the same coverage.\n\n";

    // --- multi-shard hot tier: shard count x backend sweep ------------
    std::cout << "Multi-shard hot tier at rho=0.25 "
              << "(per-query shard scans fan out)\n"
              << "----------------------------------------------------"
              << "-----------\n";
    TextTable st({"backend", "shards", "QPS", "p50 srch (ms)",
                  "p99 srch (ms)", "probe balance", "scan us/shard"});
    struct BackendCase
    {
        const char *label;
        core::ShardBackendFactory factory;
    };
    const std::vector<BackendCase> backends = {
        {"fastscan", core::fastScanShardFactory()},
        // 50us per shard scan: a stand-in for a device with per-kernel
        // launch overhead, stressing the fan-out path.
        {"throttled 50us", core::throttledShardFactory(50e-6)},
    };
    const std::vector<std::size_t> shard_counts =
        args.smoke ? std::vector<std::size_t>{1, 2}
                   : std::vector<std::size_t>{1, 2, 4};
    for (const auto &bc : backends) {
        for (const std::size_t shards : shard_counts) {
            const auto engine =
                make_builder(core::EngineBuilder(index)
                                 .tieredFromProfile(profile, 0.25)
                                 .hotShards(shards)
                                 .shardBackend(bc.factory));
            const double secs = run_engine(*engine);
            const auto s = engine->stats();
            const auto ts = engine->tiered()->stats();
            // Balance: smallest / largest cumulative per-shard probe
            // count (1.0 = perfectly even routing).
            std::size_t mn = ts.shardProbeCounts.empty()
                                 ? 0
                                 : ts.shardProbeCounts[0];
            std::size_t mx = mn;
            for (const std::size_t p : ts.shardProbeCounts) {
                mn = std::min(mn, p);
                mx = std::max(mx, p);
            }
            // Mean searchClusters wall time per shard (min-max across
            // shards): the signal a per-shard executor would balance.
            double scan_min = 0.0, scan_max = 0.0;
            bool have_scan = false;
            for (std::size_t sh = 0; sh < ts.shardScanCounts.size();
                 ++sh) {
                if (ts.shardScanCounts[sh] == 0)
                    continue;
                const double us =
                    ts.shardScanSeconds[sh] * 1e6 /
                    static_cast<double>(ts.shardScanCounts[sh]);
                scan_min = have_scan ? std::min(scan_min, us) : us;
                scan_max = have_scan ? std::max(scan_max, us) : us;
                have_scan = true;
            }
            shard_rows.push_back(
                {bc.label, shards,
                 static_cast<double>(s.completed) / secs,
                 s.searchLatency.p50, s.searchLatency.p99,
                 mx == 0 ? 0.0
                         : static_cast<double>(mn) /
                               static_cast<double>(mx)});
            st.addRow({bc.label, std::to_string(shards),
                       TextTable::num(
                           static_cast<double>(s.completed) / secs, 0),
                       TextTable::num(s.searchLatency.p50 * 1e3, 2),
                       TextTable::num(s.searchLatency.p99 * 1e3, 2),
                       mx == 0 ? "-"
                               : TextTable::num(
                                     static_cast<double>(mn) /
                                         static_cast<double>(mx),
                                     2),
                       have_scan ? TextTable::num(scan_min, 1) + "-" +
                                       TextTable::num(scan_max, 1)
                                 : "-"});
        }
    }
    st.print(std::cout);

    std::cout << "\n'probe balance' is min/max cumulative probes routed "
                 "per shard (1.0 =\nperfectly even); 'scan us/shard' is "
                 "the mean per-scan wall time of the\nfastest and "
                 "slowest shard (TieredStatsSnapshot shardScanSeconds /"
                 "\nshardScanCounts). The throttled backend adds a "
                 "per-scan launch delay and\nstresses the fan-out "
                 "path, where shard scans of different queries run\n"
                 "concurrently instead of serializing the batch.\n";

    // --- perf snapshot for CI trend archiving ---
    {
        std::ofstream os("BENCH_tiered.json");
        bench::JsonWriter w(os);
        w.beginObject();
        w.kv("bench", "tiered");
        w.kv("smoke", args.smoke);
        w.kv("numQueries", n_queries);
        w.kv("numVectors", spec.numVectors);
        w.kv("dim", spec.dim);
        w.kv("simd", vs::fastScanHasSimd());
        w.key("flat");
        w.beginObject();
        w.kv("qps", flat_qps);
        w.kv("p50SearchSeconds", flat_p50);
        w.kv("p99SearchSeconds", flat_p99);
        w.endObject();
        w.key("rhoSweep");
        w.beginArray();
        for (const RhoRow &r : rho_rows) {
            w.beginObject();
            w.kv("rho", r.rho);
            w.kv("numHot", r.numHot);
            w.kv("hotBytes", r.hotBytes);
            w.kv("qps", r.qps);
            w.kv("p50SearchSeconds", r.p50Search);
            w.kv("p99SearchSeconds", r.p99Search);
            w.kv("hotOnlyFraction", r.hotOnlyFraction);
            w.kv("hitRateMeasured", r.hitMeasured);
            w.kv("hitRatePredicted", r.hitPredicted);
            w.endObject();
        }
        w.endArray();
        w.key("shardSweep");
        w.beginArray();
        for (const ShardRow &r : shard_rows) {
            w.beginObject();
            w.kv("backend", r.backend);
            w.kv("shards", r.shards);
            w.kv("qps", r.qps);
            w.kv("p50SearchSeconds", r.p50Search);
            w.kv("p99SearchSeconds", r.p99Search);
            w.kv("probeBalance", r.probeBalance);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        os << "\n";
    }
    std::cout << "\nwrote BENCH_tiered.json\n";
    return 0;
}

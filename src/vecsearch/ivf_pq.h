/**
 * @file
 * IVF-PQ: inverted lists storing product-quantized codes, searched with
 * asymmetric distance computation. Exposes the CQ / LUT-construction /
 * LUT-scan timing breakdown the paper analyzes in Fig. 3 (right).
 */

#ifndef VLR_VECSEARCH_IVF_PQ_H
#define VLR_VECSEARCH_IVF_PQ_H

#include <memory>
#include <span>
#include <vector>

#include "vecsearch/ivf.h"
#include "vecsearch/pq.h"

namespace vlr::vs
{

/** Wall-clock breakdown of one (batched) IVF-PQ search. */
struct SearchBreakdown
{
    double cqSeconds = 0.0;
    double lutBuildSeconds = 0.0;
    double scanSeconds = 0.0;

    double
    total() const
    {
        return cqSeconds + lutBuildSeconds + scanSeconds;
    }

    void
    accumulate(const SearchBreakdown &o)
    {
        cqSeconds += o.cqSeconds;
        lutBuildSeconds += o.lutBuildSeconds;
        scanSeconds += o.scanSeconds;
    }
};

/**
 * IVF index with PQ-encoded lists.
 *
 * With `byResidual` the PQ encodes the residual (x - centroid) and a LUT
 * is built per (query, probe) pair; without it a single LUT per query is
 * shared across probes (cheaper construction, slightly lower recall),
 * mirroring the Faiss trade-off.
 */
class IvfPqIndex
{
  public:
    IvfPqIndex(std::shared_ptr<const CoarseQuantizer> cq, std::size_t m,
               std::size_t nbits, bool by_residual = false);

    /** Train the PQ codebooks on a sample of the corpus. */
    void train(std::span<const float> data, std::size_t n,
               const KMeansParams &params = {});

    void add(std::span<const float> vecs, std::size_t n);
    void addPreassigned(std::span<const float> vecs, std::size_t n,
                        std::span<const std::int32_t> assign);

    std::vector<SearchHit> search(const float *query, std::size_t k,
                                  std::size_t nprobe,
                                  SearchBreakdown *bd = nullptr) const;

    /** Scan an explicit cluster set (hybrid CPU path). */
    std::vector<SearchHit> searchClusters(
        const float *query, std::size_t k,
        std::span<const cluster_id_t> clusters,
        SearchBreakdown *bd = nullptr) const;

    std::vector<std::vector<SearchHit>> searchBatch(
        std::span<const float> queries, std::size_t nq, std::size_t k,
        std::size_t nprobe, SearchBreakdown *bd = nullptr) const;

    const CoarseQuantizer &quantizer() const { return *cq_; }
    const ProductQuantizer &pq() const { return pq_; }
    bool byResidual() const { return byResidual_; }
    std::size_t dim() const { return cq_->dim(); }
    std::size_t nlist() const { return cq_->nlist(); }
    std::size_t size() const { return total_; }
    std::size_t listSize(cluster_id_t c) const;
    std::vector<std::size_t> listSizes() const;
    const std::vector<idx_t> &listIds(cluster_id_t c) const;
    const std::vector<std::uint8_t> &listCodes(cluster_id_t c) const;

    /** Bytes of code + id payload, the "index footprint". */
    std::size_t memoryBytes() const;

  private:
    void scanList(cluster_id_t c, const float *lut, TopK &topk) const;

    std::shared_ptr<const CoarseQuantizer> cq_;
    ProductQuantizer pq_;
    bool byResidual_;
    std::size_t total_ = 0;
    std::vector<std::vector<idx_t>> ids_;
    std::vector<std::vector<std::uint8_t>> codes_;
};

} // namespace vlr::vs

#endif // VLR_VECSEARCH_IVF_PQ_H

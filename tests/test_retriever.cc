/**
 * @file
 * Tests for the retrieval strategies: VectorLiteRAG and the CPU-Only /
 * DED-GPU / ALL-GPU / HedraRAG baselines (Sections V-A, VI-D).
 */

#include <memory>

#include <gtest/gtest.h>

#include "core/retriever.h"

namespace vlr::core
{
namespace
{

struct RetrieverFixture : public ::testing::Test
{
    static void
    SetUpTestSuite()
    {
        ctx_ = new DatasetContext(wl::tinySpec());
    }

    static void
    TearDownTestSuite()
    {
        delete ctx_;
        ctx_ = nullptr;
    }

    RetrieverConfig
    config(RetrieverKind kind) const
    {
        RetrieverConfig cfg;
        cfg.kind = kind;
        cfg.numGpus = 4;
        cfg.gpuSpec = gpu::h100Spec();
        cfg.sloSearchSeconds = 0.1;
        cfg.peakLlmThroughput = 20.0;
        cfg.kvBaselineBytes = 4 * 30e9;
        return cfg;
    }

    static DatasetContext *ctx_;
};

DatasetContext *RetrieverFixture::ctx_ = nullptr;

TEST_F(RetrieverFixture, NamesAreStable)
{
    EXPECT_EQ(retrieverName(RetrieverKind::CpuOnly), "CPU-Only");
    EXPECT_EQ(retrieverName(RetrieverKind::DedicatedGpu), "DED-GPU");
    EXPECT_EQ(retrieverName(RetrieverKind::AllGpu), "ALL-GPU");
    EXPECT_EQ(retrieverName(RetrieverKind::VectorLite), "vLiteRAG");
    EXPECT_EQ(retrieverName(RetrieverKind::HedraRag), "HedraRAG");
}

TEST_F(RetrieverFixture, CpuOnlyPlacesNothingOnGpu)
{
    const auto setup =
        buildRetrieverSetup(config(RetrieverKind::CpuOnly), *ctx_);
    EXPECT_EQ(setup.kind, RetrieverKind::CpuOnly);
    EXPECT_NEAR(setup.rho, 0.0, 1e-12);
    EXPECT_EQ(setup.dedicatedGpu, -1);
    for (const double b : setup.indexBytesPerGpu)
        EXPECT_NEAR(b, 0.0, 1e-12);
    EXPECT_FALSE(setup.dispatcher);
}

TEST_F(RetrieverFixture, AllGpuShardsWholeIndexUniformly)
{
    const auto setup =
        buildRetrieverSetup(config(RetrieverKind::AllGpu), *ctx_);
    EXPECT_NEAR(setup.rho, 1.0, 1e-12);
    EXPECT_EQ(setup.assignment.numShards(), 4u);
    // Full index resident across all GPUs.
    EXPECT_NEAR(setup.assignment.totalGpuBytes(),
                ctx_->profile().totalBytes(), 1e-6);
    // IndexIVFShards semantics: no probe pruning.
    EXPECT_FALSE(setup.pruneProbes);
    EXPECT_EQ(setup.dedicatedGpu, -1);
}

TEST_F(RetrieverFixture, DedicatedGpuExcludesOneFromLlmPool)
{
    const auto setup =
        buildRetrieverSetup(config(RetrieverKind::DedicatedGpu), *ctx_);
    EXPECT_GE(setup.dedicatedGpu, 0);
    EXPECT_LT(setup.dedicatedGpu, 4);
    // Whole index on the dedicated GPU: one shard.
    EXPECT_EQ(setup.assignment.numShards(), 1u);
    EXPECT_NEAR(setup.rho, 1.0, 1e-12);
    // The LLM pool must not carry index bytes.
    for (int g = 0; g < 4; ++g) {
        if (g != setup.dedicatedGpu)
            EXPECT_NEAR(setup.indexBytesPerGpu[g], 0.0, 1e-12);
        else
            EXPECT_GT(setup.indexBytesPerGpu[g], 0.0);
    }
}

TEST_F(RetrieverFixture, VectorLiteUsesPartitionerAndDispatcher)
{
    const auto setup =
        buildRetrieverSetup(config(RetrieverKind::VectorLite), *ctx_);
    EXPECT_TRUE(setup.dispatcher);
    EXPECT_TRUE(setup.pruneProbes);
    EXPECT_GT(setup.rho, 0.0);
    EXPECT_LT(setup.rho, 1.0);
    EXPECT_TRUE(setup.partition.converged);
    EXPECT_NEAR(setup.rho, setup.partition.rho, 1e-12);
    // Occupancy cap below the baselines' full usage.
    EXPECT_LT(setup.occupancyCap, 1.0);
}

TEST_F(RetrieverFixture, VectorLiteRespectsFixedRhoOverride)
{
    auto cfg = config(RetrieverKind::VectorLite);
    cfg.fixedRho = 0.37;
    const auto setup = buildRetrieverSetup(cfg, *ctx_);
    EXPECT_NEAR(setup.rho, 0.37, 1e-12);
}

TEST_F(RetrieverFixture, VectorLiteBytesBalanceAcrossGpus)
{
    const auto setup =
        buildRetrieverSetup(config(RetrieverKind::VectorLite), *ctx_);
    double total = 0.0;
    for (const double b : setup.indexBytesPerGpu)
        total += b;
    EXPECT_NEAR(total, setup.assignment.totalGpuBytes(), 1e-6);
}

TEST_F(RetrieverFixture, HedraRagGoesCpuOnlyWhenLlmIsSlower)
{
    // Paper Section VI-D: when the LLM's peak throughput is below the
    // retriever's, HedraRAG allocates all GPU memory to the LLM and
    // searches on the CPU.
    auto cfg = config(RetrieverKind::HedraRag);
    cfg.peakLlmThroughput = 10.0; // far below CPU search capacity
    const auto hedra = buildRetrieverSetup(cfg, *ctx_);
    EXPECT_NEAR(hedra.rho, 0.0, 1e-9);
    // HedraRAG inherits IndexIVFShards (no pruned routing, no
    // dispatcher).
    EXPECT_FALSE(hedra.pruneProbes);
    EXPECT_FALSE(hedra.dispatcher);
}

TEST_F(RetrieverFixture, HedraRagCachesAggressivelyUnderHeavyRetrieval)
{
    // When retrieval is the slower stage, HedraRAG grows its cache
    // until retrieval throughput balances the LLM — without a latency
    // objective in sight (paper Fig. 13 places 73% on the GPUs).
    auto cfg = config(RetrieverKind::HedraRag);
    cfg.peakLlmThroughput = 300.0;
    const auto mid = buildRetrieverSetup(cfg, *ctx_);
    EXPECT_GT(mid.rho, 0.1);
    cfg.peakLlmThroughput = 600.0;
    const auto heavy = buildRetrieverSetup(cfg, *ctx_);
    EXPECT_GE(heavy.rho, mid.rho - 1e-9);
}

TEST_F(RetrieverFixture, TighterSloRaisesVectorLiteCoverage)
{
    auto tight = config(RetrieverKind::VectorLite);
    tight.sloSearchSeconds = 0.06;
    auto loose = config(RetrieverKind::VectorLite);
    loose.sloSearchSeconds = 0.2;
    const auto ts = buildRetrieverSetup(tight, *ctx_);
    const auto ls = buildRetrieverSetup(loose, *ctx_);
    EXPECT_GE(ts.rho, ls.rho - 0.01);
}

TEST_F(RetrieverFixture, ShardToGpuMapsOntoNode)
{
    for (const auto kind :
         {RetrieverKind::AllGpu, RetrieverKind::VectorLite,
          RetrieverKind::HedraRag}) {
        const auto setup = buildRetrieverSetup(config(kind), *ctx_);
        ASSERT_EQ(setup.shardToGpu.size(),
                  setup.assignment.numShards());
        for (const int g : setup.shardToGpu) {
            EXPECT_GE(g, 0);
            EXPECT_LT(g, 4);
        }
    }
}

} // namespace
} // namespace vlr::core

/**
 * @file
 * Cross-module property tests: conservation and consistency invariants
 * that must hold across the profile -> partition -> split -> route ->
 * simulate pipeline for randomized workloads and seeds.
 */

#include <memory>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "core/vectorliterag.h"

namespace vlr::core
{
namespace
{

/** Pipeline state built from a seeded tiny workload. */
struct Pipeline
{
    explicit Pipeline(std::uint64_t seed, double rho_, int shards)
        : rho(rho_)
    {
        wl::DatasetSpec spec = wl::tinySpec();
        spec.seed = seed;
        ctx = std::make_unique<DatasetContext>(spec);
        assignment = IndexSplitter::split(ctx->profile(), rho, shards);
        router = std::make_unique<Router>(assignment, true);
    }

    RoutedBatch
    routeBatch(std::size_t start, std::size_t n) const
    {
        std::vector<const wl::QueryPlan *> plans;
        for (std::size_t i = 0; i < n; ++i)
            plans.push_back(&ctx->testPlans().plan(
                (start + i) % ctx->testPlans().size()));
        return router->route(plans);
    }

    double rho;
    std::unique_ptr<DatasetContext> ctx;
    ShardAssignment assignment;
    std::unique_ptr<Router> router;
};

class InvariantTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>>
{
  protected:
    void
    SetUp() override
    {
        const auto [seed, rho] = GetParam();
        p_ = std::make_unique<Pipeline>(seed, rho, 4);
    }

    std::unique_ptr<Pipeline> p_;
};

TEST_P(InvariantTest, EveryClusterHasExactlyOneHome)
{
    // A cluster is either CPU-resident or on exactly one shard, and
    // shard membership lists agree with the mapping table.
    const auto &a = p_->assignment;
    std::set<cluster_id_t> gpu_resident;
    for (const auto &shard : a.shardClusters)
        for (const auto c : shard) {
            EXPECT_TRUE(gpu_resident.insert(c).second)
                << "cluster " << c << " on two shards";
        }
    for (std::size_t c = 0; c < a.clusterShard.size(); ++c) {
        const bool on_gpu = gpu_resident.count(
            static_cast<cluster_id_t>(c));
        EXPECT_EQ(a.clusterShard[c] != kCpuShard, on_gpu);
    }
}

TEST_P(InvariantTest, HotSetBytesEqualShardBytes)
{
    const auto &profile = p_->ctx->profile();
    EXPECT_NEAR(p_->assignment.totalGpuBytes(),
                profile.indexBytes(p_->rho),
                1e-6 * (1.0 + profile.indexBytes(p_->rho)));
}

TEST_P(InvariantTest, RoutingConservesScanWork)
{
    // GPU-scanned work plus CPU work fraction must recover each plan's
    // total work.
    const auto routed = p_->routeBatch(0, 16);
    double gpu_work = 0.0;
    for (const auto &s : routed.shards)
        gpu_work += s.workVectors;
    double expect_gpu = 0.0;
    for (std::size_t i = 0; i < 16; ++i) {
        const auto &plan = p_->ctx->testPlans().plan(
            i % p_->ctx->testPlans().size());
        expect_gpu += plan.totalWork * routed.queries[i].hitRate;
        EXPECT_NEAR(routed.queries[i].hitRate +
                        routed.queries[i].cpuWorkFraction,
                    1.0, 1e-9);
    }
    EXPECT_NEAR(gpu_work, expect_gpu, 1e-6 * (1.0 + expect_gpu));
}

TEST_P(InvariantTest, RoutedProbesPartitionPlanProbes)
{
    const auto routed = p_->routeBatch(3, 8);
    for (std::size_t i = 0; i < 8; ++i) {
        const auto &plan = p_->ctx->testPlans().plan(
            (3 + i) % p_->ctx->testPlans().size());
        EXPECT_EQ(routed.queries[i].cpuProbes +
                      routed.queries[i].gpuProbes,
                  plan.probes.size());
    }
}

TEST_P(InvariantTest, MinHitRateIsBatchMinimum)
{
    const auto routed = p_->routeBatch(7, 12);
    double lo = 1.0, sum = 0.0;
    for (const auto &q : routed.queries) {
        lo = std::min(lo, q.hitRate);
        sum += q.hitRate;
    }
    EXPECT_NEAR(routed.minHitRate, lo, 1e-12);
    EXPECT_NEAR(routed.meanHitRate, sum / 12.0, 1e-12);
}

TEST_P(InvariantTest, BatchSimulationRespectsCausality)
{
    BatchSearchSimulator sim(
        p_->ctx->cpuModel(), gpu::GpuSearchModel(gpu::h100Spec()),
        {.bytesPerVector = p_->ctx->bytesPerVector()});
    const auto routed = p_->routeBatch(11, 10);
    const auto out = sim.simulate(routed);
    // No query is ready before coarse quantization completes, nor
    // after the batch completes.
    for (const double t : out.queryReady) {
        EXPECT_GE(t, out.cqSeconds - 1e-12);
        EXPECT_LE(t, out.batchSeconds + 1e-12);
    }
    // GPU work cannot start before CQ finishes.
    for (const auto &g : out.gpuBusy)
        EXPECT_GE(g.startOffset, out.cqSeconds - 1e-12);
}

TEST_P(InvariantTest, PartitionerOutputWithinProfileBounds)
{
    PartitionInputs in;
    in.sloSearchSeconds = 0.1;
    in.peakLlmThroughput = 25.0;
    in.kvBaselineBytes = 100e9;
    LatencyBoundedPartitioner part(p_->ctx->perfModel(),
                                   p_->ctx->estimator(),
                                   p_->ctx->profile());
    const auto res = part.partition(in);
    EXPECT_GE(res.rho, 0.0);
    EXPECT_LE(res.rho, 1.0);
    EXPECT_GE(res.indexBytes, 0.0);
    EXPECT_LE(res.indexBytes,
              p_->ctx->profile().totalBytes() * (1.0 + 1e-9));
    EXPECT_LE(res.throughputBound, in.peakLlmThroughput + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InvariantTest,
    ::testing::Combine(::testing::Values(11u, 37u, 91u),
                       ::testing::Values(0.0, 0.15, 0.5, 1.0)));

/** Serving conservation: every submitted request is accounted for. */
TEST(ServingInvariants, RequestConservationAtSubCapacity)
{
    DatasetContext ctx(wl::tinySpec());
    ServingConfig cfg;
    cfg.llmConfig = llm::llama3_8b();
    cfg.gpuSpec = gpu::l40sSpec();
    cfg.cpuSpec = gpu::xeon6426Spec();
    cfg.numGpus = 4;
    cfg.retriever = RetrieverKind::VectorLite;
    cfg.arrivalRate = 5.0;
    cfg.durationSeconds = 20.0;
    cfg.drainSeconds = 30.0;
    cfg.outputTokens = 32;
    cfg.peakThroughputHint = 15.0;
    const auto res = runServing(cfg, ctx);
    // Far below capacity with a generous drain: everything completes.
    EXPECT_EQ(res.completedFirstToken, res.submitted);
    EXPECT_EQ(res.completedFull, res.submitted);
}

TEST(ServingInvariants, AttainmentMonotoneInSloBudget)
{
    DatasetContext ctx(wl::tinySpec());
    ServingConfig cfg;
    cfg.llmConfig = llm::llama3_8b();
    cfg.gpuSpec = gpu::l40sSpec();
    cfg.cpuSpec = gpu::xeon6426Spec();
    cfg.numGpus = 4;
    cfg.retriever = RetrieverKind::CpuOnly;
    cfg.arrivalRate = 8.0;
    cfg.durationSeconds = 20.0;
    cfg.outputTokens = 32;
    cfg.peakThroughputHint = 15.0;
    cfg.sloSearchOverride = 0.05;
    const auto tight = runServing(cfg, ctx);
    cfg.sloSearchOverride = 0.5;
    const auto loose = runServing(cfg, ctx);
    EXPECT_GE(loose.attainment, tight.attainment);
}

} // namespace
} // namespace vlr::core

/**
 * @file
 * Tests for the index splitter: hot-cluster selection, round-robin
 * shard balancing and mapping tables (Section IV-A4).
 */

#include <set>

#include <gtest/gtest.h>

#include "core/splitter.h"

namespace vlr::core
{
namespace
{

AccessProfile
profile8()
{
    // 8 clusters; accesses descending with cluster id for simplicity.
    // sizes vary so round-robin balancing is observable.
    return AccessProfile({80, 70, 60, 50, 40, 30, 20, 10},
                         {100, 900, 300, 700, 500, 200, 400, 600},
                         {1000, 9000, 3000, 7000, 5000, 2000, 4000,
                          6000});
}

TEST(Splitter, SelectsHotClusters)
{
    const auto p = profile8();
    const auto a = IndexSplitter::split(p, 0.5, 2);
    // Top-4 hot clusters are ids 0..3.
    std::set<cluster_id_t> resident;
    for (const auto &shard : a.shardClusters)
        for (const auto c : shard)
            resident.insert(c);
    EXPECT_EQ(resident, (std::set<cluster_id_t>{0, 1, 2, 3}));
    EXPECT_EQ(a.numShards(), 2u);
    EXPECT_DOUBLE_EQ(a.rho, 0.5);
}

TEST(Splitter, MappingTablesAreConsistent)
{
    const auto p = profile8();
    const auto a = IndexSplitter::split(p, 0.5, 3);
    ASSERT_EQ(a.clusterShard.size(), 8u);
    ASSERT_EQ(a.localId.size(), 8u);
    for (cluster_id_t c = 0; c < 8; ++c) {
        const auto s = a.clusterShard[c];
        if (s == kCpuShard) {
            EXPECT_EQ(a.localId[c], -1);
            EXPECT_FALSE(a.isGpuResident(c));
        } else {
            ASSERT_GE(s, 0);
            ASSERT_LT(static_cast<std::size_t>(s), a.numShards());
            const auto &list = a.shardClusters[s];
            const auto local = a.localId[c];
            ASSERT_GE(local, 0);
            ASSERT_LT(static_cast<std::size_t>(local), list.size());
            EXPECT_EQ(list[local], c);
            EXPECT_TRUE(a.isGpuResident(c));
        }
    }
}

TEST(Splitter, LocalIdsAreDensePerShard)
{
    const auto p = profile8();
    const auto a = IndexSplitter::split(p, 1.0, 3);
    for (std::size_t s = 0; s < a.numShards(); ++s) {
        std::set<std::int32_t> locals;
        for (const auto c : a.shardClusters[s])
            locals.insert(a.localId[c]);
        EXPECT_EQ(locals.size(), a.shardClusters[s].size());
        if (!locals.empty()) {
            EXPECT_EQ(*locals.begin(), 0);
            EXPECT_EQ(*locals.rbegin(),
                      static_cast<std::int32_t>(locals.size()) - 1);
        }
    }
}

TEST(Splitter, RoundRobinBalancesBytes)
{
    const auto p = profile8();
    const auto a = IndexSplitter::split(p, 1.0, 2);
    ASSERT_EQ(a.shardBytes.size(), 2u);
    const double total = a.shardBytes[0] + a.shardBytes[1];
    EXPECT_NEAR(total, p.totalBytes(), 1e-9);
    // Size-descending round-robin keeps shards within ~the largest
    // cluster of each other.
    EXPECT_LT(std::abs(a.shardBytes[0] - a.shardBytes[1]), 9000.0);
    EXPECT_NEAR(a.totalGpuBytes(), total, 1e-9);
    EXPECT_GE(a.maxShardBytes(),
              std::max(a.shardBytes[0], a.shardBytes[1]) - 1e-9);
}

TEST(Splitter, ZeroCoverageLeavesEverythingOnCpu)
{
    const auto p = profile8();
    const auto a = IndexSplitter::split(p, 0.0, 4);
    for (cluster_id_t c = 0; c < 8; ++c)
        EXPECT_EQ(a.clusterShard[c], kCpuShard);
    EXPECT_NEAR(a.totalGpuBytes(), 0.0, 1e-12);
}

TEST(Splitter, SingleShardHoldsAllHotClusters)
{
    const auto p = profile8();
    const auto a = IndexSplitter::split(p, 0.75, 1);
    EXPECT_EQ(a.numShards(), 1u);
    EXPECT_EQ(a.shardClusters[0].size(), 6u);
}

TEST(Splitter, UniformShardingIgnoresAccessFrequency)
{
    const auto p = profile8();
    const auto a = IndexSplitter::splitUniform(p, 1.0, 2);
    // Round-robin by id: even ids on shard 0, odd on shard 1.
    for (cluster_id_t c = 0; c < 8; ++c) {
        EXPECT_EQ(a.clusterShard[c], c % 2) << "cluster " << c;
    }
}

TEST(Splitter, UniformPartialCoverageUsesIdOrderOfHotSet)
{
    const auto p = profile8();
    const auto a = IndexSplitter::splitUniform(p, 0.5, 2);
    std::size_t resident = 0;
    for (cluster_id_t c = 0; c < 8; ++c)
        resident += a.isGpuResident(c);
    EXPECT_EQ(resident, 4u);
}

TEST(Splitter, ShardBytesMatchClusterBytes)
{
    const auto p = profile8();
    const auto a = IndexSplitter::split(p, 1.0, 3);
    for (std::size_t s = 0; s < 3; ++s) {
        double sum = 0.0;
        for (const auto c : a.shardClusters[s])
            sum += p.clusterBytes(c);
        EXPECT_NEAR(a.shardBytes[s], sum, 1e-9);
    }
}

TEST(Splitter, MoreShardsReduceMaxShardBytes)
{
    const auto p = profile8();
    const auto two = IndexSplitter::split(p, 1.0, 2);
    const auto four = IndexSplitter::split(p, 1.0, 4);
    EXPECT_LE(four.maxShardBytes(), two.maxShardBytes() + 1e-9);
}

} // namespace
} // namespace vlr::core

/**
 * @file
 * Figure 3 reproduction (real wall-clock on this host's CPU).
 *
 * Left: search latency of standard IVF-PQ vs IVF-PQ fast scan at equal
 * configuration — fast scan should win clearly at every batch size.
 * Right: latency breakdown of the fast-scan search into coarse
 * quantization (CQ), LUT construction and LUT scanning — LUT stages
 * dominate, motivating the paper's GPU offload of exactly that stage.
 *
 * The paper measures a 128M-vector index; this bench builds a reduced
 * synthetic corpus (same pipeline, smaller n) so it runs in seconds.
 * Absolute times differ from the paper; the *shape* — IVF-FS much
 * faster than IVF, LUT dominating CQ — is the reproduced result.
 */

#include <iostream>

#include "bench_util.h"
#include "common/timer.h"

using namespace vlr;

namespace
{

struct BuiltIndexes
{
    std::shared_ptr<vs::FlatCoarseQuantizer> cq;
    std::unique_ptr<vs::IvfPqIndex> ivf;
    std::unique_ptr<vs::IvfPqFastScanIndex> fs;
    std::vector<float> queries;
    std::size_t dim = 0;
};

BuiltIndexes
buildIndexes(std::size_t n, std::size_t dim, std::size_t nlist,
             std::size_t m)
{
    wl::DatasetSpec spec = wl::tinySpec();
    spec.numVectors = n;
    spec.dim = dim;
    spec.numClusters = nlist;
    wl::SyntheticDataset ds(spec);
    ds.buildVectors();

    BuiltIndexes out;
    out.dim = dim;
    out.cq = ds.makeCoarseQuantizer();
    // Same PQ4 configuration for both indexes; the only difference is
    // the scan kernel (plain ADC vs register-blocked fast scan).
    out.ivf = std::make_unique<vs::IvfPqIndex>(out.cq, m, 4);
    out.fs = std::make_unique<vs::IvfPqFastScanIndex>(out.cq, m);
    out.ivf->train(ds.vectors(), n);
    out.fs->train(ds.vectors(), n);
    out.ivf->addPreassigned(ds.vectors(), n, ds.assignments());
    out.fs->addPreassigned(ds.vectors(), n, ds.assignments());

    wl::QueryGenerator gen(ds, 123);
    out.queries = gen.generate(64);
    return out;
}

double
timeSearch(const auto &index, const std::vector<float> &queries,
           std::size_t dim, std::size_t batch, std::size_t nprobe,
           vs::SearchBreakdown *bd = nullptr)
{
    WallTimer t;
    const int reps = 5;
    for (int r = 0; r < reps; ++r)
        index.searchBatch(
            std::span<const float>(queries.data(), batch * dim), batch,
            10, nprobe, bd);
    return t.elapsed() / reps;
}

} // namespace

int
main()
{
    printBanner(std::cout, "Figure 3: IVF vs IVF fast scan (measured)");

    const std::size_t n = 60000, dim = 32, nlist = 256, m = 8;
    const std::size_t nprobe = 48;
    auto built = buildIndexes(n, dim, nlist, m);

    std::cout << "index: " << n << " x " << dim << " vectors, nlist "
              << nlist << ", PQ" << m << "x4, nprobe " << nprobe
              << (vs::fastScanHasSimd() ? ", AVX2 kernels\n"
                                        : ", scalar kernels\n")
              << '\n';

    TextTable left({"batch", "IVF (ms)", "IVF-FS (ms)",
                    "IVF-FS normalized", "speedup"});
    for (const std::size_t batch : {4ul, 16ul}) {
        const double t_ivf =
            timeSearch(*built.ivf, built.queries, dim, batch, nprobe);
        const double t_fs =
            timeSearch(*built.fs, built.queries, dim, batch, nprobe);
        left.addRow({std::to_string(batch),
                     TextTable::num(t_ivf * 1e3, 2),
                     TextTable::num(t_fs * 1e3, 2),
                     TextTable::num(t_fs / t_ivf, 3),
                     TextTable::num(t_ivf / t_fs, 2) + "x"});
    }
    left.print(std::cout);
    std::cout << "\npaper: IVF-FS is significantly faster than IVF at "
                 "both batch sizes.\n\n";

    printBanner(std::cout, "Figure 3 (right): IVF-FS latency breakdown");
    TextTable right({"batch", "CQ (ms)", "LUT build (ms)",
                     "LUT scan (ms)", "LUT share"});
    for (const std::size_t batch : {2ul, 8ul}) {
        vs::SearchBreakdown bd;
        timeSearch(*built.fs, built.queries, dim, batch, nprobe, &bd);
        const double lut = bd.lutBuildSeconds + bd.scanSeconds;
        right.addRow({std::to_string(batch),
                      TextTable::num(bd.cqSeconds * 1e3 / 5, 2),
                      TextTable::num(bd.lutBuildSeconds * 1e3 / 5, 2),
                      TextTable::num(bd.scanSeconds * 1e3 / 5, 2),
                      TextTable::pct(lut / bd.total())});
    }
    right.print(std::cout);
    std::cout << "\npaper: lookup-table operations dominate overall "
                 "search time.\n";
    return 0;
}

/**
 * @file
 * Tests for the PQ4 fast-scan kernels: packing layout, SIMD/scalar
 * agreement and LUT quantization error bounds.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vecsearch/fastscan.h"

namespace vlr::vs
{
namespace
{

std::vector<std::uint8_t>
randomCodes(Rng &rng, std::size_t m, std::size_t n)
{
    std::vector<std::uint8_t> codes(n * m);
    for (auto &c : codes)
        c = static_cast<std::uint8_t>(rng.uniformU64(16));
    return codes;
}

std::vector<float>
randomLut(Rng &rng, std::size_t m)
{
    std::vector<float> lut(m * 16);
    for (auto &x : lut)
        x = static_cast<float>(rng.uniform(0.0, 4.0));
    return lut;
}

TEST(FastScan, PackedBlockBytes)
{
    EXPECT_EQ(packedBlockBytes(1), 16u);
    EXPECT_EQ(packedBlockBytes(8), 128u);
}

TEST(FastScan, PackPadsToWholeBlocks)
{
    Rng rng(1);
    const std::size_t m = 4;
    const auto codes = randomCodes(rng, m, 40); // 40 -> 2 blocks of 32
    const auto packed = packPq4Codes(m, codes, 40);
    EXPECT_EQ(packed.size(), 2 * packedBlockBytes(m));
}

TEST(FastScan, PackLayoutNibbles)
{
    // Code of vector j lands in byte j%16's low (j<16) or high (j>=16)
    // nibble of sub-quantizer m's 16-byte group.
    const std::size_t m = 2;
    std::vector<std::uint8_t> codes(32 * m);
    for (std::size_t j = 0; j < 32; ++j) {
        codes[j * m + 0] = static_cast<std::uint8_t>(j % 16);
        codes[j * m + 1] = static_cast<std::uint8_t>((j + 3) % 16);
    }
    const auto packed = packPq4Codes(m, codes, 32);
    ASSERT_EQ(packed.size(), packedBlockBytes(m));
    for (std::size_t j = 0; j < 16; ++j) {
        const std::uint8_t lo = packed[j] & 0xF;
        const std::uint8_t hi = (packed[j] >> 4) & 0xF;
        EXPECT_EQ(lo, j % 16);
        EXPECT_EQ(hi, (j + 16) % 16);
    }
}

TEST(FastScan, QuantizedLutReconstructsApproximately)
{
    Rng rng(2);
    const std::size_t m = 8;
    const auto lut = randomLut(rng, m);
    const auto qlut = quantizeLut(m, lut);
    // Entries quantize relative to their sub-quantizer row minimum with
    // a shared step; the row minima accumulate into the global bias.
    double bias = 0.0;
    for (std::size_t s = 0; s < m; ++s) {
        float row_min = lut[s * 16];
        for (std::size_t j = 1; j < 16; ++j)
            row_min = std::min(row_min, lut[s * 16 + j]);
        bias += row_min;
        for (std::size_t j = 0; j < 16; ++j) {
            const double rec =
                row_min + qlut.step * qlut.table[s * 16 + j];
            EXPECT_NEAR(rec, lut[s * 16 + j], qlut.step + 1e-6);
        }
    }
    EXPECT_NEAR(qlut.bias, bias, 1e-4);
}

TEST(FastScan, ScalarScanMatchesManualLookup)
{
    Rng rng(3);
    const std::size_t m = 4, n = 64;
    const auto codes = randomCodes(rng, m, n);
    const auto lut = randomLut(rng, m);
    const auto qlut = quantizeLut(m, lut);
    const auto packed = packPq4Codes(m, codes, n);
    const std::size_t nblocks = packed.size() / packedBlockBytes(m);

    std::vector<std::uint16_t> scores(nblocks * kFastScanBlock);
    scanPq4BlocksScalar(m, packed.data(), nblocks, qlut, scores.data());

    for (std::size_t j = 0; j < n; ++j) {
        std::uint32_t expect = 0;
        for (std::size_t sub = 0; sub < m; ++sub)
            expect += qlut.table[sub * 16 + codes[j * m + sub]];
        EXPECT_EQ(scores[j], expect) << "lane " << j;
    }
}

TEST(FastScan, SimdMatchesScalar)
{
    Rng rng(4);
    const std::size_t m = 8, n = 256;
    const auto codes = randomCodes(rng, m, n);
    const auto lut = randomLut(rng, m);
    const auto qlut = quantizeLut(m, lut);
    const auto packed = packPq4Codes(m, codes, n);
    const std::size_t nblocks = packed.size() / packedBlockBytes(m);

    std::vector<std::uint16_t> simd(nblocks * kFastScanBlock);
    std::vector<std::uint16_t> scalar(nblocks * kFastScanBlock);
    scanPq4Blocks(m, packed.data(), nblocks, qlut, simd.data());
    scanPq4BlocksScalar(m, packed.data(), nblocks, qlut, scalar.data());
    for (std::size_t i = 0; i < simd.size(); ++i)
        EXPECT_EQ(simd[i], scalar[i]) << "lane " << i;
}

TEST(FastScan, AffineMappingPreservesOrder)
{
    // Lower float LUT distance must map to lower quantized score for
    // well-separated values.
    Rng rng(5);
    const std::size_t m = 4, n = 32;
    auto codes = randomCodes(rng, m, n);
    std::vector<float> lut(m * 16);
    for (std::size_t i = 0; i < lut.size(); ++i)
        lut[i] = static_cast<float>(i % 16); // 0..15 per sub
    const auto qlut = quantizeLut(m, lut);
    const auto packed = packPq4Codes(m, codes, n);
    std::vector<std::uint16_t> scores(kFastScanBlock);
    scanPq4BlocksScalar(m, packed.data(), 1, qlut, scores.data());

    for (std::size_t j = 0; j < n; ++j) {
        float fdist = 0.f;
        for (std::size_t sub = 0; sub < m; ++sub)
            fdist += lut[sub * 16 + codes[j * m + sub]];
        const double rec = qlut.bias + qlut.step * scores[j];
        EXPECT_NEAR(rec, fdist, m * qlut.step + 1e-5);
    }
}

/** SIMD/scalar equivalence across m and block-count combinations. */
class FastScanParamTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>>
{
};

TEST_P(FastScanParamTest, KernelsAgree)
{
    const auto [m, n] = GetParam();
    Rng rng(100 + m * 31 + n);
    const auto codes = randomCodes(rng, m, n);
    const auto lut = randomLut(rng, m);
    const auto qlut = quantizeLut(m, lut);
    const auto packed = packPq4Codes(m, codes, n);
    const std::size_t nblocks = packed.size() / packedBlockBytes(m);

    std::vector<std::uint16_t> simd(nblocks * kFastScanBlock);
    std::vector<std::uint16_t> scalar(nblocks * kFastScanBlock);
    scanPq4Blocks(m, packed.data(), nblocks, qlut, simd.data());
    scanPq4BlocksScalar(m, packed.data(), nblocks, qlut, scalar.data());
    for (std::size_t i = 0; i < simd.size(); ++i)
        ASSERT_EQ(simd[i], scalar[i]) << "lane " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FastScanParamTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16),
                       ::testing::Values(1, 31, 32, 33, 100, 256)));

TEST(FastScan, AppendMatchesRepackOverConcatenation)
{
    Rng rng(99);
    const std::size_t m = 8;
    // Sweep splits crossing block boundaries both ways: filling a
    // partial tail block, landing exactly on one, and growing past it.
    for (const std::size_t n_old : {0ul, 1ul, 15ul, 16ul, 31ul, 32ul,
                                    33ul, 64ul, 97ul})
        for (const std::size_t n_new : {1ul, 7ul, 16ul, 32ul, 40ul}) {
            std::vector<std::uint8_t> codes((n_old + n_new) * m);
            for (auto &c : codes)
                c = static_cast<std::uint8_t>(rng.uniformU64(16));
            auto packed = packPq4Codes(
                m, std::span<const std::uint8_t>(codes.data(),
                                                 n_old * m),
                n_old);
            appendPq4Codes(
                m, packed, n_old,
                std::span<const std::uint8_t>(codes.data() + n_old * m,
                                              n_new * m),
                n_new);
            const auto repacked =
                packPq4Codes(m, codes, n_old + n_new);
            ASSERT_EQ(packed.size(), repacked.size())
                << n_old << "+" << n_new;
            EXPECT_TRUE(packed == repacked) << n_old << "+" << n_new;
        }
}

} // namespace
} // namespace vlr::vs

/**
 * @file
 * Executable concurrent retrieval engine — the online counterpart of
 * the event-driven serving simulator.
 *
 * Queries enter an admission queue via submit(); a dispatcher thread
 * forms dynamic batches under the shared BatchPolicy (dispatch when the
 * batch cap fills or the oldest admitted query times out, paper Section
 * IV-B2) and executes each batch as a *real* IVF-PQ fast-scan search
 * fanned out across a ThreadPool with per-query top-k results. Per-query
 * queue/search/total latencies are recorded as LatencySummary digests —
 * the same type the simulator reports — so measured percentiles can be
 * compared directly against the analytic perf-model predictions.
 *
 * The engine serves either a flat single-tier index or a TieredIndex
 * (hot/cold partition-aware path). In tiered mode each batch's routed
 * hit rates are recorded and, when an OnlineUpdater is attached, fed to
 * the drift monitor together with whether the batch met the search SLO
 * — closing the paper's online-update loop on the live path.
 */

#ifndef VLR_CORE_ENGINE_RUNTIME_H
#define VLR_CORE_ENGINE_RUNTIME_H

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/threadpool.h"
#include "core/batch_policy.h"
#include "core/tiered_index.h"
#include "vecsearch/ivf_pq_fastscan.h"

namespace vlr::core
{

struct EngineOptions
{
    /** Dispatcher policy shared with ServingConfig. */
    BatchPolicy batching{.maxBatch = 64, .timeoutSeconds = 2e-3};
    /** Results returned per query. */
    std::size_t k = 10;
    /** Probed IVF lists per query. */
    std::size_t nprobe = 16;
    /** Search worker threads (0/1 = batch executes inline). */
    std::size_t numSearchThreads = 4;
    /**
     * Retrieval-stage SLO (Table I); tiered batches whose search stage
     * exceeds it are reported to the drift monitor as SLO misses.
     */
    double sloSearchSeconds = 0.150;
    /**
     * Hot shards for engines that build their own TieredIndex (the
     * profile-based constructor); ignored when serving a caller-owned
     * index or the flat path.
     */
    std::size_t numHotShards = 1;
    /**
     * Per-shard backend factory for the same constructor; null means
     * the default in-memory fast-scan replica.
     */
    ShardBackendFactory shardBackendFactory;
};

/** Outcome of one engine query. */
struct EngineQueryResult
{
    std::vector<vs::SearchHit> hits;
    /** Admission to batch start. */
    double queueSeconds = 0.0;
    /** Batch start to batch completion. */
    double searchSeconds = 0.0;
    /** Admission to completion. */
    double totalSeconds = 0.0;
    /** Size of the batch this query rode in. */
    std::size_t batchSize = 0;
};

/**
 * Aggregate engine statistics since construction. Latency digests are
 * computed over a bounded uniform reservoir (capacity 65536 per
 * distribution), so a long-running engine's memory stays constant;
 * percentiles become approximate once more queries than that have been
 * served. Counters are exact.
 */
struct EngineStatsSnapshot
{
    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t batches = 0;
    double meanBatchSize = 0.0;
    LatencySummary queueLatency;
    LatencySummary searchLatency;
    LatencySummary totalLatency;
};

class OnlineUpdater;

/**
 * Online serving front-end over an IvfPqFastScanIndex or a TieredIndex.
 * submit() is thread-safe and may be called from any number of client
 * threads; the index must outlive the engine. Destruction drains
 * pending queries.
 */
class RetrievalEngine
{
  public:
    RetrievalEngine(const vs::IvfPqFastScanIndex &index,
                    EngineOptions options);

    /**
     * Serve from a tiered hot/cold index: batches run the partition-
     * aware routed search and per-batch hit rates feed the attached
     * updater (if any).
     */
    RetrievalEngine(const TieredIndex &index, EngineOptions options);

    /**
     * Build and own a TieredIndex over `index` at coverage rho, with
     * options.numHotShards hot shards behind
     * options.shardBackendFactory, then serve it tiered — convenience
     * wiring for callers that don't need to share the tiered index.
     * The owned index is reachable through tiered().
     */
    RetrievalEngine(const vs::IvfPqFastScanIndex &index,
                    const AccessProfile &profile, double rho,
                    EngineOptions options);
    ~RetrievalEngine();

    RetrievalEngine(const RetrievalEngine &) = delete;
    RetrievalEngine &operator=(const RetrievalEngine &) = delete;

    /**
     * Attach a drift-monitoring updater fed after every tiered batch.
     * Call before submitting queries; the updater must outlive the
     * engine. No-op wiring for flat-index engines.
     */
    void attachUpdater(OnlineUpdater *updater) { updater_ = updater; }

    /** Tiered index served by this engine, or nullptr in flat mode. */
    const TieredIndex *tiered() const { return tiered_; }

    /**
     * Admit one query (copied; dim() floats). The future resolves when
     * the query's batch completes. @throws std::runtime_error after
     * shutdown().
     */
    std::future<EngineQueryResult> submit(std::span<const float> query);

    /** Block until every admitted query has completed. */
    void drain();

    /**
     * Drain, then stop the dispatcher. Idempotent; subsequent submits
     * throw.
     */
    void shutdown();

    bool accepting() const;
    std::size_t pendingQueries() const;
    EngineStatsSnapshot stats() const;
    const EngineOptions &options() const { return options_; }

  private:
    using Clock = std::chrono::steady_clock;

    struct Pending
    {
        std::vector<float> query;
        std::promise<EngineQueryResult> promise;
        Clock::time_point admitted;
    };

    /** Fixed-size uniform reservoir of latency samples. */
    struct Reservoir
    {
        static constexpr std::size_t kCapacity = 65536;
        std::vector<double> samples;
        std::size_t seen = 0;

        void
        add(double x, Rng &rng)
        {
            ++seen;
            if (samples.size() < kCapacity) {
                samples.push_back(x);
                return;
            }
            const std::uint64_t j = rng.uniformU64(seen);
            if (j < kCapacity)
                samples[j] = x;
        }
    };

    void dispatcherLoop();
    void executeBatch(std::vector<Pending> batch);

    /** Flat-mode index (tiered_->source() when tiered). */
    const vs::IvfPqFastScanIndex &index_;
    /** Tiered index built by the profile-based constructor, if any. */
    std::unique_ptr<TieredIndex> ownedTiered_;
    /** Tiered-mode index; nullptr when serving the flat path. */
    const TieredIndex *tiered_ = nullptr;
    OnlineUpdater *updater_ = nullptr;
    EngineOptions options_;
    ThreadPool pool_;

    mutable std::mutex mutex_;
    std::condition_variable cvDispatch_;
    std::condition_variable cvIdle_;
    std::deque<Pending> queue_;
    bool accepting_ = true;
    bool stop_ = false;
    bool flushing_ = false;
    bool batchInFlight_ = false;

    mutable std::mutex statsMutex_;
    Rng statsRng_{0x5eed11fe};
    Reservoir queueSamples_;
    Reservoir searchSamples_;
    Reservoir totalSamples_;
    RunningStats batchSizes_;
    std::size_t submitted_ = 0;
    std::size_t completed_ = 0;
    std::size_t batches_ = 0;

    std::thread dispatcher_;
};

} // namespace vlr::core

#endif // VLR_CORE_ENGINE_RUNTIME_H

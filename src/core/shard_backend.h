/**
 * @file
 * Pluggable per-shard hot-tier backends.
 *
 * The tiered runtime's hot tier is N shards, each behind a
 * HotShardBackend: an abstract per-shard search/bytes/build API that
 * decouples TieredIndex from the concrete storage serving a shard. The
 * default FastScanShardBackend is an in-memory subset replica of the
 * source index (bit-identical distances); ThrottledShardBackend wraps
 * any backend with a fixed per-scan delay to model a slower device in
 * tests and benches. A real accelerator index slots in behind the same
 * interface without touching the tiering, routing or update layers —
 * this is the seam the ROADMAP's "real-device hot tier" item plugs
 * into.
 */

#ifndef VLR_CORE_SHARD_BACKEND_H
#define VLR_CORE_SHARD_BACKEND_H

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "vecsearch/ivf_pq_fastscan.h"

namespace vlr::core
{

/**
 * One hot shard's storage + search implementation.
 *
 * Implementations must be internally immutable after construction:
 * searchClusters() is const and may run from any number of threads
 * concurrently (the tiered batch executor fans different queries' shard
 * scans across a pool). A shard is rebuilt — never mutated — on
 * repartition: the tiered runtime constructs a fresh backend set for
 * the new placement and swaps the whole snapshot.
 *
 * Correctness contract: for every cluster assigned to the shard,
 * searchClusters() must return exactly the hits the source index's
 * searchClusters() returns for the same (query, k, clusters), with
 * bit-identical distances — the tiered parity guarantee (merged
 * per-shard top-k == single-tier serial search) rests on it.
 */
class HotShardBackend
{
  public:
    virtual ~HotShardBackend() = default;

    /**
     * Scan this shard's copies of @p clusters (all resident here) for
     * one query and return the top-k hits sorted by (dist, id).
     * @param query dim() floats.
     * @param k maximum hits returned.
     * @param clusters global cluster ids, every one resident on this
     *        shard.
     * @param scratch optional reusable per-thread buffers.
     */
    virtual std::vector<vs::SearchHit> searchClusters(
        const float *query, std::size_t k,
        std::span<const cluster_id_t> clusters,
        vs::SearchScratch *scratch) const = 0;

    /** Resident bytes of this shard's replica (ids + packed codes). */
    virtual std::size_t bytes() const = 0;

    /** Number of clusters resident on this shard. */
    virtual std::size_t numClusters() const = 0;

    /** Vectors resident on this shard. */
    virtual std::size_t numVectors() const = 0;

    /** Short backend name for stats and bench tables. */
    virtual std::string name() const = 0;

    /**
     * Bytes of this backend's data actually resident in RAM right now.
     * In-memory backends equal bytes(); backends serving out of a
     * memory-mapped file report only the pages the kernel currently
     * holds (storage::MmapColdTier walks mincore()). Advisory — the
     * value may be stale by the time the caller reads it.
     */
    virtual std::size_t residentBytes() const { return bytes(); }

    /**
     * Clusters whose data is fully RAM-resident right now. Advisory,
     * like residentBytes(); defaults to numClusters() for in-memory
     * backends.
     */
    virtual std::size_t residentClusters() const { return numClusters(); }
};

/**
 * Default backend: an in-memory PQ4 fast-scan subset replica of the
 * shard's clusters, extracted with IvfPqFastScanIndex::subsetClusters.
 * Shares the source's coarse quantizer and trained PQ, so distances are
 * byte-for-byte those of the source — the strongest possible form of
 * the parity contract.
 */
class FastScanShardBackend : public HotShardBackend
{
  public:
    /**
     * @param source trained and populated source index (must outlive
     *        the backend only through construction; the replica owns
     *        copies of the lists).
     * @param clusters global ids of the clusters this shard serves.
     */
    FastScanShardBackend(const vs::IvfPqFastScanIndex &source,
                         std::span<const cluster_id_t> clusters);

    std::vector<vs::SearchHit> searchClusters(
        const float *query, std::size_t k,
        std::span<const cluster_id_t> clusters,
        vs::SearchScratch *scratch) const override;

    std::size_t bytes() const override { return bytes_; }
    std::size_t numClusters() const override { return numClusters_; }
    std::size_t numVectors() const override { return replica_.size(); }
    std::string name() const override { return "fastscan"; }

  private:
    vs::IvfPqFastScanIndex replica_;
    std::size_t numClusters_ = 0;
    std::size_t bytes_ = 0;
};

/**
 * Test/bench double modelling a slower device: delegates every call to
 * an inner backend and busy-sleeps a fixed delay per searchClusters()
 * call. Results stay bit-identical to the inner backend; only timing
 * changes — which is exactly what repartition-under-load and fan-out
 * concurrency tests need.
 */
class ThrottledShardBackend : public HotShardBackend
{
  public:
    /**
     * @param inner backend actually serving the scans.
     * @param delay_seconds wall-clock delay added to every scan call.
     */
    ThrottledShardBackend(std::unique_ptr<HotShardBackend> inner,
                          double delay_seconds);

    std::vector<vs::SearchHit> searchClusters(
        const float *query, std::size_t k,
        std::span<const cluster_id_t> clusters,
        vs::SearchScratch *scratch) const override;

    std::size_t bytes() const override { return inner_->bytes(); }
    std::size_t numClusters() const override { return inner_->numClusters(); }
    std::size_t numVectors() const override { return inner_->numVectors(); }
    std::string name() const override
    {
        return "throttled(" + inner_->name() + ")";
    }

    /** Configured per-scan delay in seconds. */
    double delaySeconds() const { return delaySeconds_; }

  private:
    std::unique_ptr<HotShardBackend> inner_;
    double delaySeconds_ = 0.0;
};

/**
 * Builds the backend for one shard of a placement. Called once per
 * shard per (re)partition, off the snapshot lock; must return a fully
 * usable backend for the given cluster set (possibly empty).
 * @param source the tiered runtime's source index.
 * @param clusters global ids of the clusters assigned to this shard.
 * @param shard_id shard index in [0, num_shards).
 */
using ShardBackendFactory =
    std::function<std::unique_ptr<HotShardBackend>(
        const vs::IvfPqFastScanIndex &source,
        std::span<const cluster_id_t> clusters, std::size_t shard_id)>;

/** Factory for the default in-memory fast-scan replica backend. */
ShardBackendFactory fastScanShardFactory();

/**
 * Factory wrapping every shard's fast-scan replica in a
 * ThrottledShardBackend with the given per-scan delay.
 */
ShardBackendFactory throttledShardFactory(double delay_seconds);

} // namespace vlr::core

#endif // VLR_CORE_SHARD_BACKEND_H

#include "core/hitrate_estimator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/beta_dist.h"

namespace vlr::core
{

HitRateEstimator::HitRateEstimator(const AccessProfile &profile,
                                   const wl::PlanSet &train_plans,
                                   std::size_t grid_points)
{
    assert(grid_points >= 3);
    gridRho_.resize(grid_points);
    gridMean_.resize(grid_points);
    gridVar_.resize(grid_points);

    for (std::size_t g = 0; g < grid_points; ++g) {
        const double rho = static_cast<double>(g) /
                           static_cast<double>(grid_points - 1);
        gridRho_[g] = rho;
        const auto hot = profile.hotBitmap(rho);
        const auto rates = train_plans.allHitRates(hot);
        double mean = 0.0;
        for (const double r : rates)
            mean += r;
        mean /= std::max<std::size_t>(1, rates.size());
        double var = 0.0;
        for (const double r : rates)
            var += (r - mean) * (r - mean);
        var /= std::max<std::size_t>(1, rates.size());
        gridMean_[g] = mean;
        gridVar_[g] = var;
    }

    // sigma_max^2: empirical variance where the mean crosses 0.5; when
    // the grid never reaches 0.5 (degenerate skew), take the max.
    sigmaMaxSq_ = 0.0;
    bool found = false;
    for (std::size_t g = 1; g < grid_points; ++g) {
        if ((gridMean_[g - 1] - 0.5) * (gridMean_[g] - 0.5) <= 0.0 &&
            gridMean_[g] != gridMean_[g - 1]) {
            const double t = (0.5 - gridMean_[g - 1]) /
                             (gridMean_[g] - gridMean_[g - 1]);
            sigmaMaxSq_ =
                gridVar_[g - 1] + t * (gridVar_[g] - gridVar_[g - 1]);
            found = true;
            break;
        }
    }
    if (!found)
        sigmaMaxSq_ = *std::max_element(gridVar_.begin(), gridVar_.end());
    sigmaMaxSq_ = std::max(sigmaMaxSq_, 1e-6);
}

double
HitRateEstimator::interp(const std::vector<double> &ys, double rho) const
{
    rho = std::clamp(rho, 0.0, 1.0);
    const double pos = rho * static_cast<double>(gridRho_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, gridRho_.size() - 1);
    const double t = pos - static_cast<double>(lo);
    return ys[lo] * (1.0 - t) + ys[hi] * t;
}

double
HitRateEstimator::meanHitRate(double rho) const
{
    return interp(gridMean_, rho);
}

double
HitRateEstimator::empiricalVariance(double rho) const
{
    return interp(gridVar_, rho);
}

double
HitRateEstimator::varianceApprox(double mean) const
{
    mean = std::clamp(mean, 0.0, 1.0);
    return 4.0 * sigmaMaxSq_ * mean * (1.0 - mean);
}

double
HitRateEstimator::etaMin(double rho, std::size_t batch) const
{
    const double mean = meanHitRate(rho);
    if (mean <= 1e-9)
        return 0.0;
    if (mean >= 1.0 - 1e-9)
        return 1.0;
    const double var = varianceApprox(mean);
    const auto beta = BetaDistribution::fromMoments(mean, var);
    return beta.expectedMin(batch);
}

double
HitRateEstimator::hitRate2Coverage(double eta_target,
                                   std::size_t batch) const
{
    if (eta_target <= 0.0)
        return 0.0;
    if (etaMin(1.0, batch) < eta_target)
        return 1.0;
    double lo = 0.0, hi = 1.0;
    for (int i = 0; i < 40; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (etaMin(mid, batch) >= eta_target)
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

} // namespace vlr::core

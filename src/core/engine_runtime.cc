#include "core/engine_runtime.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include <cmath>

#include "common/log.h"
#include "core/online_update.h"
#include "core/slo_autopilot.h"

namespace vlr::core
{

namespace
{

double
secondsBetween(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

std::chrono::steady_clock::duration
toDuration(double seconds)
{
    return std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(seconds));
}

} // namespace

RetrievalEngine::RetrievalEngine(const vs::IvfPqFastScanIndex &index,
                                 std::unique_ptr<TieredIndex> owned,
                                 const TieredIndex *tiered,
                                 EngineConfig config)
    : index_(index), ownedTiered_(std::move(owned)), tiered_(tiered),
      config_(std::move(config)), tenantTable_(config_.tenants),
      pool_(ThreadPoolOptions{.numThreads = config_.numSearchThreads,
                              .pinThreads = config_.pinSearchThreads}),
      batchCap_(config_.batching.maxBatch), started_(Clock::now())
{
    config_.validate();
    dispatcher_ = std::thread([this] { dispatcherLoop(); });
}

RetrievalEngine::~RetrievalEngine()
{
    // Dispatcher first — it feeds observeBatch(), so the autopilot
    // must outlive it. A control cycle racing shutdown only reads
    // stats() and actuates the cap, both safe on a drained engine.
    shutdown();
    ownedAutopilot_.reset();
}

RetrievalEngine::Pending
RetrievalEngine::makePending(const SearchRequest &request) const
{
    const std::size_t d = index_.dim();
    if (request.query.size() < d)
        throw std::invalid_argument(
            "RetrievalEngine: query span shorter than dim()");
    Pending p;
    p.query.assign(request.query.begin(), request.query.begin() + d);
    p.k = request.k == 0 ? config_.defaultK : request.k;
    p.nprobe =
        request.nprobe == 0 ? config_.defaultNprobe : request.nprobe;
    p.priority = request.priority;
    p.tenant = request.tenant;
    p.tag = request.tag;
    p.admitted = Clock::now();
    if (request.deadlineSeconds > 0.0) {
        p.hasDeadline = true;
        p.deadline = p.admitted + toDuration(request.deadlineSeconds);
    }
    return p;
}

void
RetrievalEngine::resolve(Pending &p, SearchResponse &&r)
{
    if (!p.callback) {
        p.promise.set_value(std::move(r));
        return;
    }
    // User callbacks run on the dispatcher thread (or the submitting
    // thread for rejections); a throwing callback must not take the
    // whole engine down via std::terminate.
    try {
        p.callback(std::move(r));
    } catch (const std::exception &e) {
        logWarn("RetrievalEngine: submitAsync callback threw: ",
                e.what());
    } catch (...) {
        logWarn("RetrievalEngine: submitAsync callback threw");
    }
}

double
RetrievalEngine::liveShareLocked(TenantId tenant) const
{
    const auto it = liveShare_.find(tenant);
    return it != liveShare_.end() ? it->second
                                  : tenantTable_.resolve(tenant).share;
}

std::size_t
RetrievalEngine::tenantQueueBound(TenantId tenant) const
{
    const auto bound = static_cast<std::size_t>(
        liveShareLocked(tenant) *
        static_cast<double>(config_.batching.maxQueue));
    return std::max<std::size_t>(bound, 1);
}

double
RetrievalEngine::tenantShare(TenantId tenant) const
{
    std::lock_guard<std::mutex> slk(statsMutex_);
    return liveShareLocked(tenant);
}

void
RetrievalEngine::setTenantShare(TenantId tenant, double share)
{
    const TenantClass &c = tenantTable_.resolve(tenant);
    share = std::clamp(share, c.minShare, c.maxShare);
    std::lock_guard<std::mutex> slk(statsMutex_);
    liveShare_[tenant] = share;
}

void
RetrievalEngine::admit(Pending p)
{
    const bool tenants = config_.tenants.enable;
    bool reject = false;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        if (!accepting_)
            throw std::runtime_error(
                "RetrievalEngine: submit after shutdown");
        // Count before the dispatcher can see the request, so stats()
        // never observes completed > submitted. statsMutex_ nests
        // inside mutex_ only here; no path takes them reversed.
        const std::size_t depth = queue_.size();
        reject = config_.batching.maxQueue != 0 &&
                 depth >= config_.batching.maxQueue;
        {
            std::lock_guard<std::mutex> slk(statsMutex_);
            // Per-tenant admission: a tenant already holding its live
            // share of the bounded queue rejects even while the
            // global queue has room, so the remaining slots stay
            // reachable for the other tenants. Decided under
            // statsMutex_ because the adaptive controller moves live
            // shares under it.
            if (tenants && !reject)
                reject = queuedPerTenant_[p.tenant] >=
                         tenantQueueBound(p.tenant);
            ++submitted_;
            if (reject)
                ++rejected_;
            if (tenants) {
                TenantCounters &tc = tenantStats_[p.tenant];
                ++tc.submitted;
                if (reject)
                    ++tc.rejected;
            }
        }
        if (!reject) {
            p.seq = nextSeq_++;
            if (tenants)
                ++queuedPerTenant_[p.tenant];
            queue_.push_back(std::move(p));
        }
    }
    if (reject) {
        SearchResponse r;
        r.disposition = Disposition::kRejected;
        r.k = p.k;
        r.nprobe = p.nprobe;
        r.tenant = p.tenant;
        r.tag = p.tag;
        resolve(p, std::move(r));
        return;
    }
    cvDispatch_.notify_all();
}

std::future<SearchResponse>
RetrievalEngine::submit(SearchRequest request)
{
    Pending p = makePending(request);
    auto fut = p.promise.get_future();
    admit(std::move(p));
    return fut;
}

std::vector<std::future<SearchResponse>>
RetrievalEngine::submitMany(std::span<const SearchRequest> requests)
{
    // Validate every request before admitting any, so a bad span in
    // the middle of the batch cannot strand already-admitted requests
    // behind discarded futures.
    std::vector<Pending> pendings;
    pendings.reserve(requests.size());
    for (const SearchRequest &request : requests)
        pendings.push_back(makePending(request));
    std::vector<std::future<SearchResponse>> futures;
    futures.reserve(pendings.size());
    for (Pending &p : pendings) {
        futures.push_back(p.promise.get_future());
        admit(std::move(p));
    }
    return futures;
}

void
RetrievalEngine::submitAsync(SearchRequest request,
                             std::function<void(SearchResponse)> done)
{
    Pending p = makePending(request);
    p.callback = std::move(done);
    admit(std::move(p));
}

void
RetrievalEngine::setBatchCap(std::size_t cap)
{
    batchCap_.store(std::max<std::size_t>(cap, 1),
                    std::memory_order_relaxed);
    cvDispatch_.notify_all();
}

void
RetrievalEngine::drain()
{
    std::unique_lock<std::mutex> lk(mutex_);
    flushing_ = true;
    cvDispatch_.notify_all();
    cvIdle_.wait(lk, [this] { return queue_.empty() && !batchInFlight_; });
    flushing_ = false;
    cvDispatch_.notify_all();
}

void
RetrievalEngine::shutdown()
{
    {
        std::lock_guard<std::mutex> lk(mutex_);
        accepting_ = false;
    }
    if (dispatcher_.joinable()) {
        drain();
        {
            std::lock_guard<std::mutex> lk(mutex_);
            stop_ = true;
        }
        cvDispatch_.notify_all();
        dispatcher_.join();
    }
}

bool
RetrievalEngine::accepting() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return accepting_;
}

std::size_t
RetrievalEngine::pendingQueries() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return queue_.size();
}

std::size_t
RetrievalEngine::pendingForTenant(TenantId tenant) const
{
    std::lock_guard<std::mutex> lk(mutex_);
    const auto it = queuedPerTenant_.find(tenant);
    return it == queuedPerTenant_.end() ? 0 : it->second;
}

EngineStatsSnapshot
RetrievalEngine::stats() const
{
    std::lock_guard<std::mutex> lk(statsMutex_);
    EngineStatsSnapshot s;
    s.submitted = submitted_;
    s.served = served_;
    s.expired = expired_;
    s.rejected = rejected_;
    s.completed = served_ + expired_ + rejected_;
    s.batches = batches_;
    s.meanBatchSize = batchSizes_.mean();
    const auto digest = [](const Reservoir &r) {
        SampleSet ss;
        ss.addAll(r.samples);
        return summarizeLatency(ss);
    };
    s.queueLatency = digest(queueSamples_);
    s.searchLatency = digest(searchSamples_);
    s.totalLatency = digest(totalSamples_);
    s.expiredLatency = digest(expiredSamples_);
    s.degradedServed = degradedServed_;
    s.degradedBatches = degradedBatches_;
    s.servedWork = servedWork_;
    s.currentBatchCap = batchCap();
    s.autopilotCycles = autopilotCycles_;
    s.autopilotRepartitions = autopilotRepartitions_;
    s.autopilotTrace.assign(decisionTrace_.begin(),
                            decisionTrace_.end());
    s.tenants.reserve(tenantStats_.size());
    for (const auto &[tenant, tc] : tenantStats_) {
        TenantStatsSnapshot ts;
        ts.tenant = tenant;
        ts.submitted = tc.submitted;
        ts.served = tc.served;
        ts.expired = tc.expired;
        ts.rejected = tc.rejected;
        ts.degradedServed = tc.degradedServed;
        ts.servedWork = tc.servedWork;
        ts.share = liveShareLocked(tenant);
        ts.weight = tenantTable_.weight(tenant);
        ts.queueLatency = digest(tc.queueSamples);
        ts.totalLatency = digest(tc.totalSamples);
        s.tenants.push_back(std::move(ts));
    }
    return s;
}

void
RetrievalEngine::noteAutopilotCycle()
{
    std::lock_guard<std::mutex> slk(statsMutex_);
    ++autopilotCycles_;
}

void
RetrievalEngine::recordAutopilotDecision(AutopilotDecision decision)
{
    decision.atSeconds = secondsBetween(started_, Clock::now());
    std::lock_guard<std::mutex> slk(statsMutex_);
    if (decision.repartitioned)
        ++autopilotRepartitions_;
    decisionTrace_.push_back(decision);
    if (decisionTrace_.size() > kTraceCapacity)
        decisionTrace_.pop_front();
}

std::vector<RetrievalEngine::Pending>
RetrievalEngine::takeExpiredLocked(Clock::time_point now)
{
    std::vector<Pending> expired;
    bool any = false;
    for (const auto &p : queue_)
        if (p.hasDeadline && now >= p.deadline) {
            any = true;
            break;
        }
    if (!any)
        return expired;
    std::deque<Pending> keep;
    for (auto &p : queue_) {
        if (p.hasDeadline && now >= p.deadline) {
            if (config_.tenants.enable)
                --queuedPerTenant_[p.tenant];
            expired.push_back(std::move(p));
        } else {
            keep.push_back(std::move(p));
        }
    }
    queue_.swap(keep);
    return expired;
}

void
RetrievalEngine::resolveExpired(std::vector<Pending> expired)
{
    const auto now = Clock::now();
    {
        std::lock_guard<std::mutex> slk(statsMutex_);
        for (const auto &p : expired) {
            ++expired_;
            expiredSamples_.add(secondsBetween(p.admitted, now),
                                statsRng_);
            if (config_.tenants.enable)
                ++tenantStats_[p.tenant].expired;
        }
    }
    for (auto &p : expired) {
        SearchResponse r;
        r.disposition = Disposition::kExpiredInQueue;
        r.queueSeconds = secondsBetween(p.admitted, now);
        r.totalSeconds = r.queueSeconds;
        r.k = p.k;
        r.nprobe = p.nprobe;
        r.tenant = p.tenant;
        r.tag = p.tag;
        resolve(p, std::move(r));
    }
}

std::vector<std::size_t>
RetrievalEngine::formGroupLocked() const
{
    // EDF within a priority class: highest priority first; inside a
    // class, deadlined requests by earliest deadline (a deadline-free
    // request is an infinite deadline, so it follows every deadlined
    // one), admission order as the tie-break. The batch is every
    // queued request sharing the lead's k — per-request nprobe rides
    // through to the batch search — taken in the same order up to the
    // live cap.
    std::vector<std::size_t> order(queue_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [this](std::size_t a, std::size_t b) {
                  const Pending &pa = queue_[a];
                  const Pending &pb = queue_[b];
                  if (pa.priority != pb.priority)
                      return pa.priority > pb.priority;
                  if (pa.hasDeadline != pb.hasDeadline)
                      return pa.hasDeadline;
                  if (pa.hasDeadline && pa.deadline != pb.deadline)
                      return pa.deadline < pb.deadline;
                  return pa.seq < pb.seq;
              });
    std::vector<std::size_t> group;
    const std::size_t cap = batchCap();
    if (!tenantTable_.fairService()) {
        const std::size_t lead_k = queue_[order.front()].k;
        for (const std::size_t i : order) {
            if (queue_[i].k != lead_k)
                continue;
            group.push_back(i);
            if (group.size() >= cap)
                break;
        }
        return group;
    }

    // Start-time fair queueing over the EDF order: split the sorted
    // order into per-tenant candidate lists (each already in EDF
    // order) and grant batch slots to the tenant whose next candidate
    // has the smallest virtual start time,
    //
    //   start    = max(engine virtual time, tenant's last finish)
    //   finish   = start + effective nprobe / effective weight
    //   vtime    = start of the granted slot,
    //
    // ties to the smaller would-be finish, then the smaller tenant id.
    // Granting by start is what makes the discipline self-correcting:
    // a tenant that has received less service restarts at the engine
    // virtual time, below every backlogged competitor's pending
    // finish, and wins the next slot. (Granting by finish alone can
    // permanently lock out a lighter tenant whose cost/weight
    // increment is commensurate with a heavier tenant's — their
    // would-be finishes tie on every round and a deterministic
    // tie-break then decides every grant.) Charging effective nprobe
    // makes the long-run *scanned work* share proportional to the
    // weight while a tenant stays backlogged; a tenant that went idle
    // restarts at the engine virtual time, so idle periods bank no
    // credit. The first grant fixes the batch's k; candidates with a
    // different k are skipped (they stay queued for a later batch).
    // Everything here mutates local copies — the grants are committed
    // by chargeGroupLocked() only when the batch really dispatches.
    std::map<TenantId, std::vector<std::size_t>> byTenant;
    for (const std::size_t i : order)
        byTenant[queue_[i].tenant].push_back(i);
    double vtime = virtualTime_;
    std::map<TenantId, double> finish;
    for (const auto &[tenant, list] : byTenant) {
        const auto it = virtualFinish_.find(tenant);
        finish[tenant] = it == virtualFinish_.end() ? 0.0 : it->second;
    }
    std::map<TenantId, std::size_t> cursor;
    std::size_t lead_k = 0;
    while (group.size() < cap) {
        bool found = false;
        TenantId best;
        double bestStart = 0.0;
        double bestFinish = 0.0;
        std::size_t bestIdx = 0;
        for (const auto &[tenant, list] : byTenant) {
            std::size_t &cur = cursor[tenant];
            while (cur < list.size() && !group.empty() &&
                   queue_[list[cur]].k != lead_k)
                ++cur;
            if (cur >= list.size())
                continue;
            const std::size_t idx = list[cur];
            const double start = std::max(vtime, finish[tenant]);
            const double f =
                start + static_cast<double>(queue_[idx].nprobe) /
                            tenantTable_.weight(tenant);
            // Strict < keeps the smaller tenant id on full ties (the
            // map iterates ids ascending).
            if (!found || start < bestStart ||
                (start == bestStart && f < bestFinish)) {
                found = true;
                best = tenant;
                bestStart = start;
                bestFinish = f;
                bestIdx = idx;
            }
        }
        if (!found)
            break;
        if (group.empty())
            lead_k = queue_[bestIdx].k;
        vtime = std::max(vtime, finish[best]);
        finish[best] = bestFinish;
        group.push_back(bestIdx);
        ++cursor[best];
    }
    return group;
}

void
RetrievalEngine::chargeGroupLocked(const std::vector<std::size_t> &group)
{
    if (!tenantTable_.fairService())
        return;
    // Replay the grants in group order. The arithmetic is identical
    // to the simulation in formGroupLocked(), so the committed tags
    // match what selection assumed.
    for (const std::size_t i : group) {
        const Pending &p = queue_[i];
        double &finish = virtualFinish_[p.tenant];
        const double start = std::max(virtualTime_, finish);
        finish = start + static_cast<double>(p.nprobe) /
                             tenantTable_.weight(p.tenant);
        virtualTime_ = start;
    }
}

void
RetrievalEngine::dispatcherLoop()
{
    std::unique_lock<std::mutex> lk(mutex_);
    for (;;) {
        cvDispatch_.wait(lk, [this] {
            return stop_ || flushing_ || !queue_.empty();
        });
        if (queue_.empty()) {
            if (stop_)
                return;
            // Drain requested with nothing queued: report idle, then
            // sleep until the flush flag clears or new work arrives
            // (avoids spinning on the outer predicate).
            cvIdle_.notify_all();
            cvDispatch_.wait(lk, [this] {
                return stop_ || !flushing_ || !queue_.empty();
            });
            continue;
        }

        // Deadline sweep first: requests whose deadline elapsed while
        // queued resolve kExpiredInQueue without ever entering a
        // batch (and without burning a search thread). The
        // batchInFlight_ guard keeps drain() from returning between
        // the sweep (which empties the queue) and the resolution of
        // the swept requests.
        {
            auto expired = takeExpiredLocked(Clock::now());
            if (!expired.empty()) {
                batchInFlight_ = true;
                lk.unlock();
                resolveExpired(std::move(expired));
                lk.lock();
                batchInFlight_ = false;
                cvIdle_.notify_all();
                continue;
            }
        }

        // Batch formation (paper IV-B2): dispatch once the compatible
        // group fills the cap, the oldest admitted request has waited
        // out the timeout, or a drain/stop forces the partial batch
        // out. Sleep no later than the earliest queued deadline so
        // expiry resolves promptly.
        const auto now = Clock::now();
        const auto batch_due =
            queue_.front().admitted +
            toDuration(config_.batching.timeoutSeconds);
        const auto sleep_until_wake = [&] {
            auto wake = batch_due;
            for (const auto &p : queue_)
                if (p.hasDeadline)
                    wake = std::min(wake, p.deadline);
            cvDispatch_.wait_until(lk, wake);
        };
        const bool forced = stop_ || flushing_ || now >= batch_due;
        // The group can only fill the cap if the whole queue could:
        // skip the O(n log n) group sort on wakeups that cannot
        // dispatch anyway (every submit notifies the dispatcher).
        const std::size_t cap = batchCap();
        if (!forced && queue_.size() < cap) {
            sleep_until_wake();
            continue;
        }
        auto group = formGroupLocked();
        if (!forced && group.size() < cap) {
            sleep_until_wake();
            continue;
        }

        // The batch is committed: charge its WFQ grants (a formed
        // group that goes back to sleep above charges nothing), then
        // extract it in dispatch order and compact the queue.
        chargeGroupLocked(group);
        std::vector<Pending> batch;
        batch.reserve(group.size());
        std::vector<char> taken(queue_.size(), 0);
        for (const std::size_t i : group) {
            if (config_.tenants.enable)
                --queuedPerTenant_[queue_[i].tenant];
            batch.push_back(std::move(queue_[i]));
            taken[i] = 1;
        }
        std::deque<Pending> rest;
        for (std::size_t i = 0; i < queue_.size(); ++i)
            if (!taken[i])
                rest.push_back(std::move(queue_[i]));
        queue_.swap(rest);

        batchInFlight_ = true;
        const std::size_t backlog = queue_.size();
        lk.unlock();
        executeBatch(std::move(batch), backlog);
        lk.lock();
        batchInFlight_ = false;
        cvIdle_.notify_all();
    }
}

void
RetrievalEngine::executeBatch(std::vector<Pending> batch,
                              std::size_t backlog)
{
    const std::size_t nq = batch.size();
    const std::size_t d = index_.dim();
    const std::size_t k = batch.front().k;

    // Graceful degradation (the alternative to letting the backlog
    // expire): when the standing queue exceeds `queuePressure` batch
    // caps, serve this batch at nprobe scaled by queuePressure /
    // pressure — deeper overload, shallower search — never below the
    // configured floor, and never deeper than requested.
    double scale = 1.0;
    if (config_.degrade.enable) {
        const double pressure =
            static_cast<double>(backlog + nq) /
            static_cast<double>(batchCap());
        if (pressure >= config_.degrade.queuePressure)
            scale = config_.degrade.queuePressure / pressure;
    }

    std::vector<float> queries(nq * d);
    std::vector<std::size_t> nprobes(nq);
    std::size_t degraded_count = 0;
    for (std::size_t i = 0; i < nq; ++i) {
        std::copy(batch[i].query.begin(), batch[i].query.end(),
                  queries.begin() + i * d);
        std::size_t np = batch[i].nprobe;
        // Degradation is tenant-scoped: a request whose TenantClass
        // opted out (degradable = false) keeps its requested depth
        // even under pressure, so best-effort tenants absorb the
        // recall loss before premium ones.
        const bool eligible =
            !config_.tenants.enable ||
            tenantTable_.resolve(batch[i].tenant).degradable;
        if (scale < 1.0 && eligible) {
            const auto scaled =
                static_cast<std::size_t>(std::llround(
                    static_cast<double>(np) * scale));
            np = std::max(
                std::min(np, config_.degrade.nprobeFloor), scaled);
        }
        if (np < batch[i].nprobe)
            ++degraded_count;
        nprobes[i] = np;
    }

    const auto t0 = Clock::now();
    TieredBatchStats tstats;
    std::vector<std::vector<vs::SearchHit>> results;
    if (tiered_)
        results = tiered_->searchBatchParallel(
            queries, nq, k, nprobes, pool_,
            (updater_ || autopilot_) ? &tstats : nullptr);
    else
        results = index_.searchBatchParallel(queries, nq, k, nprobes,
                                             pool_);
    const auto t1 = Clock::now();
    const double search_s = secondsBetween(t0, t1);

    // With an autopilot attached it is the sole repartition driver;
    // feeding the drift monitor too would make the two fight over the
    // snapshot-swap path.
    if (tiered_ && updater_ && !autopilot_)
        updater_->record(tstats.meanHitRate,
                         search_s <= config_.sloSearchSeconds);
    if (tiered_ && autopilot_)
        autopilot_->observeBatch(
            BatchObservation{nq, tstats.routeSeconds,
                             tstats.scanSeconds, tstats.meanHitRate},
            queries, nq);

    {
        std::lock_guard<std::mutex> slk(statsMutex_);
        ++batches_;
        batchSizes_.add(static_cast<double>(nq));
        degradedServed_ += degraded_count;
        if (degraded_count > 0)
            ++degradedBatches_;
        for (std::size_t i = 0; i < nq; ++i) {
            queueSamples_.add(secondsBetween(batch[i].admitted, t0),
                              statsRng_);
            searchSamples_.add(search_s, statsRng_);
            totalSamples_.add(secondsBetween(batch[i].admitted, t1),
                              statsRng_);
            ++served_;
            servedWork_ += nprobes[i];
            if (config_.tenants.enable) {
                TenantCounters &tc = tenantStats_[batch[i].tenant];
                ++tc.served;
                tc.servedWork += nprobes[i];
                if (nprobes[i] < batch[i].nprobe)
                    ++tc.degradedServed;
                tc.queueSamples.add(
                    secondsBetween(batch[i].admitted, t0), statsRng_);
                tc.totalSamples.add(
                    secondsBetween(batch[i].admitted, t1), statsRng_);
            }
        }
    }

    for (std::size_t i = 0; i < nq; ++i) {
        SearchResponse r;
        r.disposition = Disposition::kServed;
        r.degraded = nprobes[i] < batch[i].nprobe;
        r.hits = std::move(results[i]);
        r.queueSeconds = secondsBetween(batch[i].admitted, t0);
        r.searchSeconds = search_s;
        r.totalSeconds = secondsBetween(batch[i].admitted, t1);
        r.batchSize = nq;
        r.k = k;
        r.nprobe = nprobes[i];
        r.tenant = batch[i].tenant;
        r.tag = batch[i].tag;
        resolve(batch[i], std::move(r));
    }
}

} // namespace vlr::core

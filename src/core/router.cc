#include "core/router.h"

#include <algorithm>
#include <cassert>

namespace vlr::core
{

Router::Router(const ShardAssignment &assignment, bool prune_probes)
    : assignment_(assignment), prune_(prune_probes)
{
}

RoutedBatch
Router::route(std::span<const wl::QueryPlan *const> batch) const
{
    RoutedBatch out;
    out.queries.resize(batch.size());
    out.shards.resize(assignment_.numShards());

    double hit_sum = 0.0;
    for (std::size_t qi = 0; qi < batch.size(); ++qi) {
        const wl::QueryPlan &plan = *batch[qi];
        RoutedQuery &rq = out.queries[qi];

        double hit_work = 0.0;
        std::vector<bool> shard_touched(assignment_.numShards(), false);
        for (std::size_t j = 0; j < plan.probes.size(); ++j) {
            const cluster_id_t c = plan.probes[j];
            const shard_id_t s =
                assignment_.clusterShard[static_cast<std::size_t>(c)];
            if (s == kCpuShard) {
                ++rq.cpuProbes;
                continue;
            }
            const auto si = static_cast<std::size_t>(s);
            hit_work += plan.probeWork[j];
            ++rq.gpuProbes;
            out.shards[si].workVectors += plan.probeWork[j];
            if (prune_)
                ++out.shards[si].pairs;
            if (!shard_touched[si]) {
                shard_touched[si] = true;
                ++out.shards[si].queries;
                rq.shardsUsed.push_back(s);
            }
        }

        if (!prune_) {
            // IndexIVFShards: each shard is instructed to probe the
            // full nprobe for every query in the batch.
            for (auto &shard : out.shards)
                shard.pairs += plan.probes.size();
        }

        rq.hitRate =
            plan.totalWork > 0.0 ? hit_work / plan.totalWork : 0.0;
        rq.cpuWorkFraction = 1.0 - rq.hitRate;
        hit_sum += rq.hitRate;
        out.minHitRate = std::min(out.minHitRate, rq.hitRate);
    }

    if (batch.empty())
        out.minHitRate = 0.0;
    out.meanHitRate =
        batch.empty() ? 0.0 : hit_sum / static_cast<double>(batch.size());
    return out;
}

} // namespace vlr::core

/**
 * @file
 * Multi-tenant replayable workload bench — the sustained
 * production-shaped proof behind the serving engine. A WorkloadScript
 * declares three tenants sharing one engine:
 *
 *  - premium   high priority, tight deadline, heavy skew;
 *  - standard  mid priority, diurnal rate drift;
 *  - bursty    10x arrival burst mid-run plus a hotspot flip.
 *
 * The script expands to a deterministic, replayable WorkloadTrace
 * (saved, reloaded and verified byte-for-byte during the run), which
 * is then replayed in real time — arrivals paced, every request
 * carrying its tenant's k/nprobe/deadline/priority class — against
 * three engine configurations:
 *
 *  - no-isolation        per-tenant accounting only; the bounded
 *                        queue is first-come-first-admitted, so the
 *                        burst can squeeze everyone else out;
 *  - isolated            weighted per-tenant admission (TenantPolicy
 *                        share caps) on top of the same queue;
 *  - isolated+autopilot  isolation plus graceful nprobe degradation
 *                        and the closed-loop SLO autopilot.
 *
 * Hot shards run behind the throttled backend, so engine capacity is
 * sleep-bounded and the burst reliably overloads it on any host. The
 * isolation gate is enforced by exit code: with weighted admission
 * on, the bursting tenant must not push a compliant tenant's miss
 * rate or p99 total latency past the configured bounds, and the
 * burst itself must actually have been clipped. Results land in
 * BENCH_workload.json.
 *
 * Run: ./bench_workload [num_queries] [--smoke]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/engine_builder.h"
#include "core/engine_runtime.h"
#include "workload/tenant.h"

namespace
{

using namespace vlr;

constexpr std::uint64_t kPremium = 1;
constexpr std::uint64_t kStandard = 2;
constexpr std::uint64_t kBursty = 3;

/** Compliant-tenant bounds enforced by the isolation gate. */
constexpr double kMissRateBound = 0.08;
constexpr double kP99TotalBound = 0.080; // seconds

/**
 * Replay the trace in real time: sleep until each scripted arrival
 * (submitting immediately when behind schedule) and submit with the
 * tenant's SLO class. Returns the replay wall time.
 */
double
replayTrace(core::RetrievalEngine &engine, const wl::WorkloadTrace &trace)
{
    std::vector<std::future<core::SearchResponse>> futures;
    futures.reserve(trace.size());
    WallTimer wall;
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const auto due =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            trace.requests()[i].atSeconds));
        std::this_thread::sleep_until(due);
        futures.push_back(engine.submit(trace.request(i)));
    }
    engine.drain();
    const double secs = wall.elapsed();
    for (auto &f : futures)
        f.get();
    return secs;
}

void
writeTenantJson(bench::JsonWriter &w, const char *name,
                const core::TenantStatsSnapshot &ts)
{
    w.beginObject();
    w.kv("name", name);
    w.kv("tenant", ts.tenant);
    w.kv("submitted", ts.submitted);
    w.kv("served", ts.served);
    w.kv("expired", ts.expired);
    w.kv("rejected", ts.rejected);
    w.kv("degradedServed", ts.degradedServed);
    w.kv("missRate", ts.missRate());
    w.kv("p50TotalSeconds", ts.totalLatency.p50);
    w.kv("p99TotalSeconds", ts.totalLatency.p99);
    w.kv("p99QueueSeconds", ts.queueLatency.p99);
    w.endObject();
}

const char *
tenantName(std::uint64_t tenant)
{
    switch (tenant) {
    case kPremium:
        return "premium";
    case kStandard:
        return "standard";
    case kBursty:
        return "bursty";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vlr;

    const auto args = bench::parseBenchArgs(argc, argv,
                                            /*default_queries=*/6000,
                                            /*smoke_queries=*/1500,
                                            /*min_queries=*/200);
    if (!args.ok) {
        std::cerr << "bench_workload: " << args.error << "\n"
                  << "usage: bench_workload [num_queries >= 200] "
                     "[--smoke]\n";
        return 1;
    }

    std::cout << "Multi-tenant workload bench"
              << (args.smoke ? " (smoke mode)" : "") << "\n"
              << "===========================\n\n";

    // --- corpus + index ------------------------------------------------
    wl::DatasetSpec spec = wl::tinySpec();
    spec.numVectors = args.smoke ? 8000 : 24000;
    spec.dim = 64;
    spec.numClusters = args.smoke ? 64 : 128;
    spec.nprobe = 16;
    wl::SyntheticDataset dataset(spec);
    dataset.buildVectors();
    const auto cq = dataset.makeCoarseQuantizer();
    vs::IvfPqFastScanIndex index(cq, spec.dim / 4);
    index.train(dataset.vectors(), spec.numVectors);
    index.addPreassigned(dataset.vectors(), spec.numVectors,
                         dataset.assignments());

    // --- workload script -----------------------------------------------
    // Rates are sized so the run submits roughly num_queries requests
    // and the burst window alone exceeds the throttled engine's
    // sleep-bounded capacity.
    const double horizon = args.smoke ? 1.5 : 3.0;
    const double base_rate =
        static_cast<double>(args.numQueries) / (2.0 * horizon);

    wl::WorkloadScript script;
    script.horizonSeconds = horizon;
    {
        wl::TenantSpec premium;
        premium.name = "premium";
        premium.tenant = kPremium;
        premium.arrivalRate = 0.60 * base_rate;
        premium.zipfTheta = 1.1;
        premium.k = 10;
        premium.deadlineSeconds = 0.040;
        premium.priority = 2;
        script.tenants.push_back(premium);

        wl::TenantSpec standard;
        standard.name = "standard";
        standard.tenant = kStandard;
        standard.arrivalRate = 0.90 * base_rate;
        standard.zipfTheta = 0.8;
        standard.diurnalAmplitude = 0.4;
        standard.diurnalPeriodSeconds = horizon;
        standard.k = 10;
        standard.deadlineSeconds = 0.060;
        standard.priority = 1;
        script.tenants.push_back(standard);

        wl::TenantSpec bursty;
        bursty.name = "bursty";
        bursty.tenant = kBursty;
        bursty.arrivalRate = 0.50 * base_rate;
        bursty.zipfTheta = 1.4;
        bursty.burstFactor = 10.0;
        bursty.burstStartSeconds = 0.40 * horizon;
        bursty.burstEndSeconds = 0.70 * horizon;
        bursty.hotspotFlipSeconds = {0.55 * horizon};
        bursty.hotspotFlipFraction = 0.5;
        bursty.k = 10;
        bursty.deadlineSeconds = 0.030;
        bursty.priority = 1;
        script.tenants.push_back(bursty);
    }

    const std::uint64_t trace_seed = 4242;
    const auto trace =
        wl::WorkloadTrace::generate(script, dataset, trace_seed);

    // Replayability check: the serialized trace must reload equal.
    const char *trace_path = "WORKLOAD_trace.bin";
    trace.saveFile(trace_path);
    const bool trace_roundtrip =
        wl::WorkloadTrace::loadFile(trace_path) == trace;
    std::remove(trace_path);

    std::cout << "index: " << index.size() << " vectors, nlist "
              << index.nlist() << "; script: " << trace.size()
              << " requests over " << horizon << " s ("
              << trace.countForTenant(kPremium) << " premium, "
              << trace.countForTenant(kStandard) << " standard, "
              << trace.countForTenant(kBursty)
              << " bursty; 10x burst in ["
              << script.tenants[2].burstStartSeconds << ", "
              << script.tenants[2].burstEndSeconds
              << ") s); trace round-trip "
              << (trace_roundtrip ? "OK" : "FAILED") << "\n\n";

    // --- calibration: access profile from the trace's own queries -----
    const std::size_t n_cal =
        std::min<std::size_t>(trace.size(), args.smoke ? 400 : 1200);
    std::vector<float> cal(n_cal * spec.dim);
    for (std::size_t i = 0; i < n_cal; ++i)
        std::copy(trace.requests()[i].query.begin(),
                  trace.requests()[i].query.end(),
                  cal.begin() + i * spec.dim);
    std::vector<double> work(spec.numClusters);
    for (std::size_t c = 0; c < spec.numClusters; ++c)
        work[c] = static_cast<double>(dataset.clusterSizes()[c]) *
                  spec.scaleFactor();
    const auto plans =
        wl::PlanSet::build(*cq, cal, n_cal, spec.nprobe, work);
    const auto profile = core::AccessProfile::fromPlans(plans, dataset);

    // --- three configurations against the identical trace -------------
    // The throttled backend charges 1 ms per hot-shard scan, so
    // capacity is bounded by sleeps (portable across hosts) and the
    // burst window genuinely overloads the queue.
    const double scan_delay_s = 1e-3;
    const std::size_t max_queue = 48;

    struct ConfigResult
    {
        std::string name;
        double replaySeconds = 0.0;
        core::EngineStatsSnapshot stats;
    };
    const std::vector<std::string> modes = {"no-isolation", "isolated",
                                            "isolated+autopilot"};
    std::vector<ConfigResult> results;

    for (const std::string &mode : modes) {
        const bool isolated = mode != "no-isolation";
        const bool autopilot = mode == "isolated+autopilot";

        core::TenantPolicy tenants;
        tenants.enable = true;
        // Share caps: the burst may hold at most 40% of the queue;
        // premium gets a guaranteed half.
        tenants.defaultShare = isolated ? 0.4 : 1.0;
        if (isolated)
            tenants.shares = {{kPremium, 0.5}};

        core::EngineBuilder builder(index);
        builder.tieredFromProfile(profile, 0.35)
            .hotShards(2)
            .shardBackend(core::throttledShardFactory(scan_delay_s))
            .defaultK(10)
            .defaultNprobe(spec.nprobe)
            .searchThreads(4)
            .batching({.maxBatch = 16, .timeoutSeconds = 1e-3})
            .admissionQueueBound(max_queue)
            .tenantIsolation(tenants);
        if (autopilot) {
            core::DegradationPolicy degrade;
            degrade.enable = true;
            degrade.nprobeFloor = 4;
            degrade.queuePressure = 1.5;
            core::AutopilotPolicy pilot;
            pilot.enable = true;
            pilot.controlIntervalSeconds = 0.25;
            pilot.minBatchObservations = 4;
            pilot.minRho = 0.2;
            pilot.maxBatchCap = 32;
            builder.degradation(degrade).autopilot(pilot);
        }
        const auto engine = builder.build();

        ConfigResult r;
        r.name = mode;
        r.replaySeconds = replayTrace(*engine, trace);
        r.stats = engine->stats();
        results.push_back(std::move(r));
    }

    // --- report --------------------------------------------------------
    TextTable t({"config", "tenant", "submitted", "served", "expired",
                 "rejected", "miss", "p50 tot (ms)", "p99 tot (ms)"});
    for (const ConfigResult &r : results)
        for (const auto &ts : r.stats.tenants)
            t.addRow({r.name, tenantName(ts.tenant),
                      std::to_string(ts.submitted),
                      std::to_string(ts.served),
                      std::to_string(ts.expired),
                      std::to_string(ts.rejected),
                      TextTable::pct(ts.missRate()),
                      TextTable::num(ts.totalLatency.p50 * 1e3, 2),
                      TextTable::num(ts.totalLatency.p99 * 1e3, 2)});
    t.print(std::cout);

    // --- isolation gate ------------------------------------------------
    // On the isolated config: every compliant tenant (premium,
    // standard) must stay under the miss-rate and p99 bounds, and the
    // burst must actually have been clipped by weighted admission.
    const core::EngineStatsSnapshot &iso = results[1].stats;
    bool gate = trace_roundtrip;
    std::size_t bursty_rejected = 0;
    std::cout << "\nisolation gate (config 'isolated'):\n";
    for (const auto &ts : iso.tenants) {
        if (ts.tenant == kBursty) {
            bursty_rejected = ts.rejected;
            continue;
        }
        const bool miss_ok = ts.missRate() <= kMissRateBound;
        const bool p99_ok = ts.totalLatency.p99 <= kP99TotalBound;
        gate = gate && miss_ok && p99_ok;
        std::cout << "  " << tenantName(ts.tenant) << ": miss "
                  << TextTable::pct(ts.missRate())
                  << (miss_ok ? " <= " : " > ")
                  << TextTable::pct(kMissRateBound) << ", p99 total "
                  << TextTable::num(ts.totalLatency.p99 * 1e3, 2)
                  << (p99_ok ? " <= " : " > ")
                  << TextTable::num(kP99TotalBound * 1e3, 2) << " ms"
                  << ((miss_ok && p99_ok) ? " [ok]" : " [FAIL]")
                  << "\n";
    }
    const bool burst_clipped = bursty_rejected > 0;
    gate = gate && burst_clipped;
    std::cout << "  bursty: " << bursty_rejected
              << " rejected (weighted admission clipped the burst: "
              << (burst_clipped ? "yes" : "NO") << ")\n"
              << "  trace round-trip: "
              << (trace_roundtrip ? "ok" : "FAILED") << "\n"
              << "gate: " << (gate ? "PASS" : "FAIL") << "\n";

    // --- JSON snapshot -------------------------------------------------
    {
        std::ofstream os("BENCH_workload.json");
        bench::JsonWriter w(os);
        w.beginObject();
        w.kv("bench", "workload");
        w.kv("smoke", args.smoke);
        w.kv("horizonSeconds", horizon);
        w.kv("traceRequests", trace.size());
        w.kv("traceSeed", trace_seed);
        w.kv("traceRoundTrip", trace_roundtrip);
        w.kv("maxQueue", max_queue);
        w.kv("scanDelaySeconds", scan_delay_s);
        w.kv("missRateBound", kMissRateBound);
        w.kv("p99TotalBound", kP99TotalBound);
        w.key("tenantsScripted");
        w.beginArray();
        for (const auto &ts : script.tenants) {
            w.beginObject();
            w.kv("name", ts.name);
            w.kv("tenant", ts.tenant);
            w.kv("arrivalRate", ts.arrivalRate);
            w.kv("zipfTheta", ts.zipfTheta);
            w.kv("deadlineSeconds", ts.deadlineSeconds);
            w.kv("priority", static_cast<std::size_t>(
                                 ts.priority < 0 ? 0 : ts.priority));
            w.kv("burstFactor", ts.burstFactor);
            w.kv("diurnalAmplitude", ts.diurnalAmplitude);
            w.endObject();
        }
        w.endArray();
        w.key("configs");
        w.beginArray();
        for (const ConfigResult &r : results) {
            w.beginObject();
            w.kv("name", r.name);
            w.kv("replaySeconds", r.replaySeconds);
            w.kv("served", r.stats.served);
            w.kv("expired", r.stats.expired);
            w.kv("rejected", r.stats.rejected);
            w.kv("degradedServed", r.stats.degradedServed);
            w.key("tenants");
            w.beginArray();
            for (const auto &ts : r.stats.tenants)
                writeTenantJson(w, tenantName(ts.tenant), ts);
            w.endArray();
            w.endObject();
        }
        w.endArray();
        w.kv("isolationGatePassed", gate);
        w.endObject();
        os << "\n";
    }
    std::cout << "\nwrote BENCH_workload.json\n";

    std::cout
        << "\nAll three configs replay the identical scripted trace "
           "(same seed, same\narrival times). Without isolation the "
           "10x burst occupies the whole bounded\nadmission queue and "
           "the compliant tenants miss on rejections; with\nweighted "
           "admission the burst saturates its own share, is clipped "
           "at\nsubmit, and the compliant tenants keep their SLOs. "
           "The autopilot config\nadditionally degrades nprobe under "
           "pressure and re-plans the hot tier\nfrom live stats.\n";
    return gate ? 0 : 1;
}

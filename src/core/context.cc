#include "core/context.h"

namespace vlr::core
{

DatasetContext::DatasetContext(wl::DatasetSpec spec)
    : DatasetContext(std::move(spec), Options())
{
}

DatasetContext::DatasetContext(wl::DatasetSpec spec, Options opts)
    : spec_(std::move(spec)), opts_(opts), dataset_(spec_),
      cpuModel_(opts.cpuSpec, spec_.cpuParams)
{
    dataset_.buildStats();
    cq_ = dataset_.makeCoarseQuantizer();

    clusterWork_.resize(spec_.numClusters);
    const double scale = spec_.scaleFactor();
    for (std::size_t c = 0; c < spec_.numClusters; ++c) {
        clusterWork_[c] =
            static_cast<double>(dataset_.clusterSizes()[c]) * scale;
    }

    wl::QueryGenerator train_gen(dataset_, opts_.seed * 2 + 1);
    const auto train_q = train_gen.generate(opts_.trainQueries);
    trainPlans_ = wl::PlanSet::build(*cq_, train_q, opts_.trainQueries,
                                     spec_.nprobe, clusterWork_);

    wl::QueryGenerator test_gen(dataset_, opts_.seed * 2 + 2);
    const auto test_q = test_gen.generate(opts_.testQueries);
    testPlans_ = wl::PlanSet::build(*cq_, test_q, opts_.testQueries,
                                    spec_.nprobe, clusterWork_);

    profile_ = std::make_unique<AccessProfile>(
        AccessProfile::fromPlans(trainPlans_, dataset_));
    estimator_ =
        std::make_unique<HitRateEstimator>(*profile_, trainPlans_);

    const std::size_t batches[] = {1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64};
    perfModel_ = SearchPerfModel::profile(cpuModel_, batches,
                                          opts_.profileNoiseStd,
                                          opts_.seed + 17);
}

double
DatasetContext::bytesPerVector() const
{
    return static_cast<double>(spec_.paperIndexBytes) / spec_.paperVectors;
}

void
DatasetContext::reprofile(wl::QueryGenerator &gen)
{
    const auto train_q = gen.generate(opts_.trainQueries);
    trainPlans_ = wl::PlanSet::build(*cq_, train_q, opts_.trainQueries,
                                     spec_.nprobe, clusterWork_);
    const auto test_q = gen.generate(opts_.testQueries);
    testPlans_ = wl::PlanSet::build(*cq_, test_q, opts_.testQueries,
                                    spec_.nprobe, clusterWork_);
    profile_ = std::make_unique<AccessProfile>(
        AccessProfile::fromPlans(trainPlans_, dataset_));
    estimator_ =
        std::make_unique<HitRateEstimator>(*profile_, trainPlans_);
}

wl::PlanSet
DatasetContext::plansFor(wl::QueryGenerator &gen, std::size_t n) const
{
    const auto q = gen.generate(n);
    return wl::PlanSet::build(*cq_, q, n, spec_.nprobe, clusterWork_);
}

} // namespace vlr::core

/**
 * @file
 * Simulated GPU device: a memory ledger (weights / vector-index shard /
 * KV cache) plus a record of retrieval activity used to model compute
 * contention between co-located retrieval kernels and LLM inference.
 */

#ifndef VLR_SIMGPU_GPU_DEVICE_H
#define VLR_SIMGPU_GPU_DEVICE_H

#include <string>
#include <vector>

#include "simgpu/gpu_spec.h"

namespace vlr::gpu
{

/**
 * One GPU in the simulated node. Memory is reserved in three buckets:
 * model weights, vector-index shard, and everything left (after the
 * runtime reserve) is KV-cache space. Retrieval activity is recorded as
 * (interval, occupancy) so the LLM engine can compute the slowdown of
 * overlapping iterations.
 */
class GpuDevice
{
  public:
    GpuDevice(int id, GpuSpec spec);

    int id() const { return id_; }
    const GpuSpec &spec() const { return spec_; }

    /** Reserve memory for model weights. Fails (fatal) on overflow. */
    void reserveWeights(bytes_t bytes);
    /** Reserve memory for a vector-index shard (replaces prior shard). */
    void setIndexBytes(bytes_t bytes);

    bytes_t weightsBytes() const { return weights_; }
    bytes_t indexBytes() const { return index_; }

    /** Memory available for KV cache after weights, index and reserve. */
    bytes_t kvCacheBytes() const;

    /** Record a retrieval kernel burst [start, end) at given occupancy. */
    void addRetrievalInterval(double start, double end, double occupancy);

    /**
     * Mean retrieval occupancy overlapping [start, end) — the
     * contention the LLM engine sees for an iteration in that window.
     */
    double retrievalOccupancyOver(double start, double end) const;

    /** Total retrieval busy time recorded (utilization accounting). */
    double retrievalBusySeconds() const;

    /** Drop intervals ending before `before` (bounds memory in long sims). */
    void pruneIntervals(double before);

  private:
    struct Interval
    {
        double start;
        double end;
        double occupancy;
    };

    int id_;
    GpuSpec spec_;
    bytes_t weights_ = 0;
    bytes_t index_ = 0;
    std::vector<Interval> intervals_;
};

} // namespace vlr::gpu

#endif // VLR_SIMGPU_GPU_DEVICE_H

#include "storage/mmap_cold_tier.h"

#include <cassert>
#include <cstdio>
#include <sstream>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include "vecsearch/fastscan.h"
#include "vecsearch/topk.h"

namespace vlr::storage
{

struct MmapColdTier::Mapping
{
    int fd = -1;
    std::uint8_t *data = nullptr;
    std::size_t bytes = 0;
    ArtifactInfo info;
    vs::PackedListsLayout layout;
    /** Start of the packed-lists section inside the mapping. */
    const std::uint8_t *lists = nullptr;
    /** Payload bytes across all cluster segments (no padding). */
    std::size_t listDataBytes = 0;

    ~Mapping()
    {
        if (data != nullptr)
            ::munmap(data, bytes);
        if (fd >= 0)
            ::close(fd);
    }
};

namespace
{

std::size_t
segmentPayloadBytes(std::uint64_t count, std::size_t m)
{
    const std::uint64_t nblocks =
        (count + vs::kFastScanBlock - 1) / vs::kFastScanBlock;
    return static_cast<std::size_t>(count * sizeof(idx_t) +
                                    nblocks * vs::packedBlockBytes(m));
}

/**
 * Score one packed list (mapped segment or in-RAM delta) and push every
 * lane into the running top-k. Identical math to
 * IvfPqFastScanIndex::searchClusters, which is what makes the cold
 * tier's distances bit-identical to the in-memory index.
 */
void
scanList(std::size_t m, const idx_t *ids, std::size_t count,
         const std::uint8_t *packed, const vs::QuantizedLut &qlut,
         vs::SearchScratch &sc, vs::TopK &topk)
{
    const std::size_t nblocks =
        (count + vs::kFastScanBlock - 1) / vs::kFastScanBlock;
    if (sc.scores.size() < nblocks * vs::kFastScanBlock)
        sc.scores.resize(nblocks * vs::kFastScanBlock);
    vs::scanPq4Blocks(m, packed, nblocks, qlut, sc.scores.data());
    for (std::size_t i = 0; i < count; ++i) {
        const float dist =
            qlut.bias + qlut.step * static_cast<float>(sc.scores[i]);
        topk.push(ids[i], dist);
    }
}

vs::ProductQuantizer
loadPqSection(const std::uint8_t *data, std::uint64_t begin,
              std::uint64_t end)
{
    std::istringstream is(std::string(
        reinterpret_cast<const char *>(data + begin),
        static_cast<std::size_t>(end - begin)));
    return vs::loadPq(is);
}

std::shared_ptr<const vs::FlatCoarseQuantizer>
loadCqSection(const std::uint8_t *data, std::uint64_t begin,
              std::uint64_t end)
{
    std::istringstream is(std::string(
        reinterpret_cast<const char *>(data + begin),
        static_cast<std::size_t>(end - begin)));
    return vs::loadCoarseQuantizer(is);
}

} // namespace

std::unique_ptr<MmapColdTier::Mapping>
MmapColdTier::openMapping(const std::string &path,
                          const MmapColdTierOptions &opts)
{
    auto map = std::make_unique<Mapping>();
    map->info = IndexStore::inspect(path);

    map->fd = ::open(path.c_str(), O_RDONLY);
    if (map->fd < 0)
        throw vs::IoError("MmapColdTier: cannot open " + path);
    map->bytes = static_cast<std::size_t>(map->info.fileBytes);

    int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
    if (opts.prefault)
        flags |= MAP_POPULATE;
#endif
    void *addr = ::mmap(nullptr, map->bytes, PROT_READ, flags, map->fd, 0);
    if (addr == MAP_FAILED)
        throw vs::IoError("MmapColdTier: mmap failed for " + path);
    map->data = static_cast<std::uint8_t *>(addr);

    map->lists = map->data + map->info.listsOffset;
    map->layout = vs::parsePackedLists(
        map->lists, static_cast<std::size_t>(map->info.listsBytes),
        map->info.m);
    if (map->layout.nlist != map->info.nlist ||
        map->layout.total != map->info.total)
        throw vs::IoError("MmapColdTier: lists section disagrees with "
                          "the artifact header");
    for (const vs::ListSegment &seg : map->layout.segments)
        if (seg.count > 0)
            map->listDataBytes +=
                segmentPayloadBytes(seg.count, map->info.m);

    int advice = POSIX_MADV_RANDOM;
    switch (opts.advice) {
    case MmapColdTierOptions::Advice::kNormal:
        advice = POSIX_MADV_NORMAL;
        break;
    case MmapColdTierOptions::Advice::kRandom:
        advice = POSIX_MADV_RANDOM;
        break;
    case MmapColdTierOptions::Advice::kSequential:
        advice = POSIX_MADV_SEQUENTIAL;
        break;
    case MmapColdTierOptions::Advice::kWillNeed:
        advice = POSIX_MADV_WILLNEED;
        break;
    }
    // Advisory only; EINVAL (e.g. artifact page size below the system
    // page size) is harmless.
    (void)::posix_madvise(map->data + map->info.listsOffset,
                          static_cast<std::size_t>(map->info.listsBytes),
                          advice);
    return map;
}

MmapColdTier::MmapColdTier(const std::string &path,
                           const MmapColdTierOptions &opts)
    : MmapColdTier(path, opts, openMapping(path, opts))
{
}

MmapColdTier::MmapColdTier(std::string path,
                           const MmapColdTierOptions &opts,
                           std::unique_ptr<Mapping> map)
    : path_(std::move(path)), opts_(opts),
      pq_(loadPqSection(map->data, map->info.pqOffset,
                        map->info.cqOffset)),
      cq_(loadCqSection(map->data, map->info.cqOffset,
                        map->info.listsOffset)),
      map_(std::move(map)), active_(std::make_unique<DeltaSet>()),
      nextId_(static_cast<idx_t>(map_->info.total))
{
    if (pq_.dim() != map_->info.dim || pq_.numSub() != map_->info.m ||
        cq_->dim() != map_->info.dim ||
        cq_->nlist() != map_->info.nlist)
        throw vs::IoError("MmapColdTier: artifact sections disagree "
                          "with the header");
    active_->clusters.resize(map_->info.nlist);
}

MmapColdTier::~MmapColdTier() = default;

std::vector<vs::SearchHit>
MmapColdTier::searchClusters(const float *query, std::size_t k,
                             std::span<const cluster_id_t> clusters,
                             vs::SearchScratch *scratch) const
{
    const std::size_t m = pq_.numSub();
    vs::SearchScratch local;
    vs::SearchScratch &sc = scratch ? *scratch : local;
    sc.lut.resize(pq_.lutSize());
    pq_.computeLut(query, sc.lut.data());
    const vs::QuantizedLut qlut = vs::quantizeLut(m, sc.lut);

    vs::TopK topk(k);
    std::shared_lock lock(stateMutex_);
    for (const cluster_id_t c : clusters) {
        const auto ci = static_cast<std::size_t>(c);
        assert(ci < map_->layout.nlist);
        const vs::ListSegment &seg = map_->layout.segments[ci];
        if (seg.count > 0) {
            const std::uint8_t *segp = map_->lists + seg.offset;
            scanList(m, reinterpret_cast<const idx_t *>(segp),
                     static_cast<std::size_t>(seg.count),
                     segp + seg.count * sizeof(idx_t), qlut, sc, topk);
        }
        for (const DeltaSet *ds : {sealed_.get(), active_.get()}) {
            if (ds == nullptr)
                continue;
            const ClusterDelta &delta = ds->clusters[ci];
            if (!delta.ids.empty())
                scanList(m, delta.ids.data(), delta.ids.size(),
                         delta.packed.data(), qlut, sc, topk);
        }
    }
    return topk.sortedHits();
}

std::size_t
MmapColdTier::bytes() const
{
    std::shared_lock lock(stateMutex_);
    std::size_t total = map_->listDataBytes + active_->bytes;
    if (sealed_)
        total += sealed_->bytes;
    return total;
}

std::size_t
MmapColdTier::numClusters() const
{
    // nlist is fixed across merges; no lock needed.
    return map_->info.nlist;
}

std::size_t
MmapColdTier::numVectors() const
{
    std::shared_lock lock(stateMutex_);
    std::size_t total = map_->layout.total + active_->count;
    if (sealed_)
        total += sealed_->count;
    return total;
}

std::size_t
MmapColdTier::residentBytes() const
{
    std::shared_lock lock(stateMutex_);
    std::size_t resident = active_->bytes;
    if (sealed_)
        resident += sealed_->bytes;
#ifdef __linux__
    const auto page =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    std::vector<unsigned char> vec;
    for (const vs::ListSegment &seg : map_->layout.segments) {
        if (seg.count == 0)
            continue;
        const std::size_t bytes =
            segmentPayloadBytes(seg.count, map_->info.m);
        const auto addr =
            reinterpret_cast<std::uintptr_t>(map_->lists + seg.offset);
        const std::uintptr_t lo = addr / page * page;
        const std::uintptr_t hi = (addr + bytes + page - 1) / page * page;
        const std::size_t npages = (hi - lo) / page;
        vec.resize(npages);
        if (::mincore(reinterpret_cast<void *>(lo), hi - lo,
                      vec.data()) != 0)
            continue;
        std::size_t in_core = 0;
        for (std::size_t p = 0; p < npages; ++p)
            if (vec[p] & 1)
                in_core += page;
        resident += std::min(in_core, bytes);
    }
#else
    resident += map_->listDataBytes;
#endif
    return resident;
}

std::size_t
MmapColdTier::residentClusters() const
{
    std::shared_lock lock(stateMutex_);
#ifdef __linux__
    const auto page =
        static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    std::size_t count = 0;
    std::vector<unsigned char> vec;
    for (const vs::ListSegment &seg : map_->layout.segments) {
        if (seg.count == 0) {
            // Nothing to fault in: trivially resident.
            ++count;
            continue;
        }
        const std::size_t bytes =
            segmentPayloadBytes(seg.count, map_->info.m);
        const auto addr =
            reinterpret_cast<std::uintptr_t>(map_->lists + seg.offset);
        const std::uintptr_t lo = addr / page * page;
        const std::uintptr_t hi = (addr + bytes + page - 1) / page * page;
        const std::size_t npages = (hi - lo) / page;
        vec.assign(npages, 0);
        if (::mincore(reinterpret_cast<void *>(lo), hi - lo,
                      vec.data()) != 0)
            continue;
        bool all = true;
        for (std::size_t p = 0; p < npages && all; ++p)
            all = (vec[p] & 1) != 0;
        if (all)
            ++count;
    }
    return count;
#else
    return map_->info.nlist;
#endif
}

void
MmapColdTier::append(std::span<const float> vecs, std::size_t n)
{
    const std::size_t d = pq_.dim();
    const std::size_t m = pq_.numSub();
    assert(vecs.size() >= n * d);

    // Assignment and encoding run outside the state lock; only the
    // id-stamped insertion below blocks concurrent scans.
    std::vector<std::int32_t> assign(n);
    std::vector<std::uint8_t> codes(n * m);
    for (std::size_t i = 0; i < n; ++i) {
        assign[i] = cq_->probe(vecs.data() + i * d, 1).clusters[0];
        pq_.encode(vecs.data() + i * d, codes.data() + i * m);
    }

    std::unique_lock lock(stateMutex_);
    for (std::size_t i = 0; i < n; ++i) {
        const auto ci = static_cast<std::size_t>(assign[i]);
        assert(ci < active_->clusters.size());
        ClusterDelta &delta = active_->clusters[ci];
        const std::size_t n_old = delta.ids.size();
        const std::size_t packed_old = delta.packed.size();
        delta.ids.push_back(nextId_++);
        delta.rawCodes.insert(delta.rawCodes.end(),
                              codes.begin() +
                                  static_cast<std::ptrdiff_t>(i * m),
                              codes.begin() +
                                  static_cast<std::ptrdiff_t>((i + 1) * m));
        vs::appendPq4Codes(
            m, delta.packed, n_old,
            std::span<const std::uint8_t>(codes).subspan(i * m, m), 1);
        active_->bytes += sizeof(idx_t) + m +
                          (delta.packed.size() - packed_old);
    }
    active_->count += n;
}

void
MmapColdTier::appendDeltas(DeltaSet &into, DeltaSet &&from,
                           std::size_t m)
{
    for (std::size_t c = 0; c < from.clusters.size(); ++c) {
        ClusterDelta &src = from.clusters[c];
        if (src.ids.empty())
            continue;
        ClusterDelta &dst = into.clusters[c];
        const std::size_t n_old = dst.ids.size();
        const std::size_t packed_old = dst.packed.size();
        dst.ids.insert(dst.ids.end(), src.ids.begin(), src.ids.end());
        dst.rawCodes.insert(dst.rawCodes.end(), src.rawCodes.begin(),
                            src.rawCodes.end());
        vs::appendPq4Codes(m, dst.packed, n_old, src.rawCodes,
                           src.ids.size());
        into.bytes += src.ids.size() * (sizeof(idx_t) + m) +
                      (dst.packed.size() - packed_old);
    }
    into.count += from.count;
}

void
MmapColdTier::mergeDeltas()
{
    std::lock_guard merge_lock(mergeMutex_);
    {
        std::unique_lock lock(stateMutex_);
        if (active_->count > 0) {
            if (sealed_) {
                appendDeltas(*sealed_, std::move(*active_),
                             pq_.numSub());
            } else {
                sealed_ = std::move(active_);
            }
            active_ = std::make_unique<DeltaSet>();
            active_->clusters.resize(map_->info.nlist);
        }
        if (!sealed_)
            return;
    }

    // The sealed set is immutable from here on (scans read it under the
    // shared lock; only merges — serialized by mergeMutex_ — replace
    // it), so the rewrite below runs without blocking searches.
    // Limitation: the base index is loaded fully into RAM for the
    // rewrite; merge cost is O(artifact size), not O(delta size).
    vs::IvfPqFastScanIndex merged = IndexStore::load(path_);
    for (std::size_t c = 0; c < sealed_->clusters.size(); ++c) {
        const ClusterDelta &delta = sealed_->clusters[c];
        if (!delta.ids.empty())
            merged.appendEncoded(static_cast<cluster_id_t>(c),
                                 delta.ids, delta.rawCodes);
    }

    const std::string tmp = path_ + ".merge.tmp";
    IndexStore::save(tmp, merged, map_->info.pageSize);
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw vs::IoError("MmapColdTier::mergeDeltas: rename failed "
                          "for " + path_);
    }
    std::unique_ptr<Mapping> fresh = openMapping(path_, opts_);

    std::unique_lock lock(stateMutex_);
    map_ = std::move(fresh);
    sealed_.reset();
}

ArtifactInfo
MmapColdTier::artifact() const
{
    std::shared_lock lock(stateMutex_);
    return map_->info;
}

std::size_t
MmapColdTier::deltaVectors() const
{
    std::shared_lock lock(stateMutex_);
    return active_->count + (sealed_ ? sealed_->count : 0);
}

} // namespace vlr::storage

#include "core/online_update.h"

#include <algorithm>
#include <cmath>

#include "common/timer.h"

namespace vlr::core
{

DriftMonitor::DriftMonitor(DriftMonitorParams params,
                           double expected_hit_rate)
    : params_(params), expectedHitRate_(expected_hit_rate)
{
}

void
DriftMonitor::record(double hit_rate, bool slo_met)
{
    hitSum_ += hit_rate;
    if (slo_met)
        ++sloMet_;
    ++count_;
}

double
DriftMonitor::observedHitRate() const
{
    return count_ ? hitSum_ / static_cast<double>(count_) : 0.0;
}

double
DriftMonitor::observedAttainment() const
{
    return count_ ? static_cast<double>(sloMet_) /
                        static_cast<double>(count_)
                  : 1.0;
}

bool
DriftMonitor::driftDetected() const
{
    if (count_ < params_.windowRequests / 4)
        return false; // not enough signal yet
    const bool diverged =
        std::fabs(observedHitRate() - expectedHitRate_) >
        params_.hitRateDivergence;
    const bool hurting =
        observedAttainment() < params_.attainmentThreshold;
    return diverged && hurting;
}

void
DriftMonitor::reset(double new_expected_hit_rate)
{
    expectedHitRate_ = new_expected_hit_rate;
    hitSum_ = 0.0;
    sloMet_ = 0;
    count_ = 0;
}

UpdateStageTimings
estimateUpdateTimings(const DatasetContext &ctx, double rho, int num_shards,
                      std::size_t num_profile_queries,
                      double partition_wall_seconds, double host_copy_bw,
                      double pcie_bw)
{
    UpdateStageTimings t;

    // Profiling: replay calibration queries through the CPU coarse
    // quantizer. Offline replay streams thousands of queries per batch
    // and keeps every core busy, so the fixed (critical-path) CQ term
    // amortizes away and the marginal per-query cost runs at roughly
    // twice the efficiency of a latency-critical online batch.
    constexpr double batching_efficiency = 2.0;
    t.profilingSeconds = static_cast<double>(num_profile_queries) *
                         ctx.cpuModel().params().cqPerQuerySeconds /
                         batching_efficiency;

    t.algorithmSeconds = partition_wall_seconds;

    // Splitting: assemble hot clusters into per-shard contiguous
    // buffers in host memory (read + write => 2x bytes).
    const double hot_bytes = ctx.profile().indexBytes(rho);
    t.splittingSeconds = 2.0 * hot_bytes / host_copy_bw;

    // Loading: PCIe transfer, shards loaded sequentially (one shard is
    // refreshed at a time so the others keep serving).
    (void)num_shards;
    t.loadingSeconds = hot_bytes / pcie_bw;
    return t;
}

UpdateOutcome
runUpdateCycle(DatasetContext &ctx, wl::QueryGenerator &gen,
               const PartitionInputs &inputs, int num_shards)
{
    UpdateOutcome out;

    // Re-profile (rebuilds profile + estimator from fresh plans).
    ctx.reprofile(gen);

    // Re-run Algorithm 1, measuring its real wall time for the
    // "Algorithm" bar of Fig. 9.
    WallTimer wall;
    LatencyBoundedPartitioner part(ctx.perfModel(), ctx.estimator(),
                                   ctx.profile());
    out.partition = part.partition(inputs);
    const double algo_wall = wall.elapsed();

    out.assignment =
        IndexSplitter::split(ctx.profile(), out.partition.rho, num_shards);
    out.timings = estimateUpdateTimings(
        ctx, out.partition.rho, num_shards,
        /*num_profile_queries=*/50000, algo_wall);
    return out;
}

} // namespace vlr::core

#include "core/shard_backend.h"

#include <chrono>
#include <thread>

namespace vlr::core
{

FastScanShardBackend::FastScanShardBackend(
    const vs::IvfPqFastScanIndex &source,
    std::span<const cluster_id_t> clusters)
    : replica_(source.subsetClusters(clusters)),
      numClusters_(clusters.size())
{
    for (const cluster_id_t c : clusters)
        bytes_ += source.listBytes(c);
}

std::vector<vs::SearchHit>
FastScanShardBackend::searchClusters(const float *query, std::size_t k,
                                     std::span<const cluster_id_t> clusters,
                                     vs::SearchScratch *scratch) const
{
    return replica_.searchClusters(query, k, clusters, nullptr, scratch);
}

ThrottledShardBackend::ThrottledShardBackend(
    std::unique_ptr<HotShardBackend> inner, double delay_seconds)
    : inner_(std::move(inner)), delaySeconds_(delay_seconds)
{
}

std::vector<vs::SearchHit>
ThrottledShardBackend::searchClusters(
    const float *query, std::size_t k,
    std::span<const cluster_id_t> clusters,
    vs::SearchScratch *scratch) const
{
    if (delaySeconds_ > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(delaySeconds_));
    return inner_->searchClusters(query, k, clusters, scratch);
}

ShardBackendFactory
fastScanShardFactory()
{
    return [](const vs::IvfPqFastScanIndex &source,
              std::span<const cluster_id_t> clusters, std::size_t) {
        return std::make_unique<FastScanShardBackend>(source, clusters);
    };
}

ShardBackendFactory
throttledShardFactory(double delay_seconds)
{
    return [delay_seconds](const vs::IvfPqFastScanIndex &source,
                           std::span<const cluster_id_t> clusters,
                           std::size_t) {
        return std::make_unique<ThrottledShardBackend>(
            std::make_unique<FastScanShardBackend>(source, clusters),
            delay_seconds);
    };
}

} // namespace vlr::core

/**
 * @file
 * Distance kernels for similarity search (L2 squared and inner product)
 * with AVX2 implementations and scalar fallbacks.
 *
 * Convention: all search code minimizes a "distance". For inner-product
 * metrics the comparable distance is the negated dot product so a single
 * smaller-is-better code path serves both metrics.
 */

#ifndef VLR_VECSEARCH_METRIC_H
#define VLR_VECSEARCH_METRIC_H

#include <cstddef>

namespace vlr::vs
{

/** Supported similarity metrics. */
enum class Metric { L2, InnerProduct };

/** Squared Euclidean distance between d-dim float vectors. */
float l2Sqr(const float *a, const float *b, std::size_t d);

/** Dot product between d-dim float vectors. */
float innerProduct(const float *a, const float *b, std::size_t d);

/** Smaller-is-better distance under the given metric. */
float comparableDistance(Metric m, const float *a, const float *b,
                         std::size_t d);

/** Scalar reference implementations (exposed for kernel tests). */
float l2SqrScalar(const float *a, const float *b, std::size_t d);
float innerProductScalar(const float *a, const float *b, std::size_t d);

/**
 * Distances from one query to n contiguous database vectors;
 * out[i] = comparableDistance(q, base + i*d).
 */
void distancesToMany(Metric m, const float *q, const float *base,
                     std::size_t n, std::size_t d, float *out);

} // namespace vlr::vs

#endif // VLR_VECSEARCH_METRIC_H

#include "core/online_update.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"
#include "common/timer.h"

namespace vlr::core
{

DriftMonitor::DriftMonitor(DriftMonitorParams params,
                           double expected_hit_rate)
    : params_(params), expectedHitRate_(expected_hit_rate)
{
}

void
DriftMonitor::record(double hit_rate, bool slo_met)
{
    hitSum_ += hit_rate;
    if (slo_met)
        ++sloMet_;
    ++count_;
}

double
DriftMonitor::observedHitRate() const
{
    return count_ ? hitSum_ / static_cast<double>(count_) : 0.0;
}

double
DriftMonitor::observedAttainment() const
{
    return count_ ? static_cast<double>(sloMet_) /
                        static_cast<double>(count_)
                  : 1.0;
}

bool
DriftMonitor::driftDetected() const
{
    if (count_ < params_.windowRequests / 4)
        return false; // not enough signal yet
    const bool diverged =
        std::fabs(observedHitRate() - expectedHitRate_) >
        params_.hitRateDivergence;
    const bool hurting =
        observedAttainment() < params_.attainmentThreshold;
    return diverged && hurting;
}

void
DriftMonitor::reset(double new_expected_hit_rate)
{
    expectedHitRate_ = new_expected_hit_rate;
    hitSum_ = 0.0;
    sloMet_ = 0;
    count_ = 0;
}

UpdateStageTimings
estimateUpdateTimings(const DatasetContext &ctx, double rho, int num_shards,
                      std::size_t num_profile_queries,
                      double partition_wall_seconds, double host_copy_bw,
                      double pcie_bw)
{
    UpdateStageTimings t;

    // Profiling: replay calibration queries through the CPU coarse
    // quantizer. Offline replay streams thousands of queries per batch
    // and keeps every core busy, so the fixed (critical-path) CQ term
    // amortizes away and the marginal per-query cost runs at roughly
    // twice the efficiency of a latency-critical online batch.
    constexpr double batching_efficiency = 2.0;
    t.profilingSeconds = static_cast<double>(num_profile_queries) *
                         ctx.cpuModel().params().cqPerQuerySeconds /
                         batching_efficiency;

    t.algorithmSeconds = partition_wall_seconds;

    // Splitting: assemble hot clusters into per-shard contiguous
    // buffers in host memory (read + write => 2x bytes).
    const double hot_bytes = ctx.profile().indexBytes(rho);
    t.splittingSeconds = 2.0 * hot_bytes / host_copy_bw;

    // Loading: PCIe transfer, shards loaded sequentially (one shard is
    // refreshed at a time so the others keep serving).
    (void)num_shards;
    t.loadingSeconds = hot_bytes / pcie_bw;
    return t;
}

namespace
{

/** Run a rebuild hook, containing any exception to a warning. */
void
runHook(const std::function<void()> &hook)
{
    if (!hook)
        return;
    try {
        hook();
    } catch (const std::exception &e) {
        logWarn("OnlineUpdater: repartition hook failed: ", e.what());
    }
}

} // namespace

OnlineUpdater::OnlineUpdater(TieredIndex &index, Options opts,
                             double expected_hit_rate)
    : index_(index), opts_(opts),
      monitor_(opts.drift, expected_hit_rate),
      expectedHitRate_(expected_hit_rate)
{
}

void
OnlineUpdater::setRepartitionHook(std::function<void()> hook)
{
    std::lock_guard<std::mutex> lk(mutex_);
    repartitionHook_ = std::move(hook);
}

OnlineUpdater::~OnlineUpdater()
{
    waitForRebuild();
}

std::size_t
OnlineUpdater::calibrationTargetLocked() const
{
    return std::max<std::size_t>(1, opts_.drift.windowRequests / 4);
}

bool
OnlineUpdater::record(double hit_rate, bool slo_met)
{
    std::unique_lock<std::mutex> lk(mutex_);
    if (calibrating_) {
        // Post-swap re-baselining: average the first observations of
        // the new placement into a *per-query-mean* expectation (the
        // same quantity record() observes) instead of adopting the
        // work-mass aggregate AccessProfile::meanWorkHitRate, whose
        // systematic offset re-triggered rebuilds right after a swap.
        calibSum_ += hit_rate;
        ++calibCount_;
        if (calibCount_ >= calibrationTargetLocked()) {
            expectedHitRate_ =
                calibSum_ / static_cast<double>(calibCount_);
            calibrating_ = false;
            monitor_.reset(expectedHitRate_);
        }
        return false;
    }
    monitor_.record(hit_rate, slo_met);
    if (!monitor_.driftDetected()) {
        if (monitor_.windowFull())
            monitor_.reset(expectedHitRate_);
        return false;
    }
    if (inFlight_)
        return false;

    // Promote/demote: re-rank clusters by the live access counts and
    // rebuild the hot tier at the configured coverage. The expensive
    // replica build + swap runs on a background thread; record() only
    // pays for count draining and the profile sort.
    if (worker_.joinable())
        worker_.join();
    const AccessProfile profile =
        index_.profileFromCounts(index_.drainAccessCounts());
    auto hot = profile.hotClusters(opts_.rho);
    inFlight_ = true;
    worker_ = std::thread([this, hot = std::move(hot),
                           hook = repartitionHook_]() mutable {
        runHook(hook);
        index_.repartition(std::move(hot));
        std::lock_guard<std::mutex> wlk(mutex_);
        inFlight_ = false;
        ++completed_;
        // Observations recorded while the rebuild was in flight judged
        // the *old* snapshot; entering calibration only now (not at
        // launch) keeps them out of the new baseline.
        calibrating_ = true;
        calibSum_ = 0.0;
        calibCount_ = 0;
        monitor_.reset(expectedHitRate_);
    });
    return true;
}

bool
OnlineUpdater::requestRepartition(std::vector<cluster_id_t> hot_clusters,
                                  std::size_t num_shards)
{
    std::unique_lock<std::mutex> lk(mutex_);
    if (inFlight_)
        return false;
    if (worker_.joinable())
        worker_.join();
    // Keep the configured coverage in step with the caller's pick so a
    // later drift-triggered rebuild would not snap back to a stale rho.
    const std::size_t nlist = index_.nlist();
    if (nlist > 0)
        opts_.rho = static_cast<double>(hot_clusters.size()) /
                    static_cast<double>(nlist);
    inFlight_ = true;
    worker_ = std::thread(
        [this, hot = std::move(hot_clusters), num_shards,
         hook = repartitionHook_]() mutable {
            runHook(hook);
            index_.repartition(std::move(hot), num_shards);
            std::lock_guard<std::mutex> wlk(mutex_);
            inFlight_ = false;
            ++completed_;
            calibrating_ = true;
            calibSum_ = 0.0;
            calibCount_ = 0;
            monitor_.reset(expectedHitRate_);
        });
    return true;
}

bool
OnlineUpdater::calibrating() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return calibrating_;
}

bool
OnlineUpdater::rebuildInFlight() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return inFlight_;
}

std::size_t
OnlineUpdater::rebuildsCompleted() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return completed_;
}

void
OnlineUpdater::waitForRebuild()
{
    std::thread t;
    {
        std::lock_guard<std::mutex> lk(mutex_);
        t.swap(worker_);
    }
    if (t.joinable())
        t.join();
}

double
OnlineUpdater::expectedHitRate() const
{
    std::lock_guard<std::mutex> lk(mutex_);
    return expectedHitRate_;
}

UpdateOutcome
runUpdateCycle(DatasetContext &ctx, wl::QueryGenerator &gen,
               const PartitionInputs &inputs, int num_shards)
{
    UpdateOutcome out;

    // Re-profile (rebuilds profile + estimator from fresh plans).
    ctx.reprofile(gen);

    // Re-run Algorithm 1, measuring its real wall time for the
    // "Algorithm" bar of Fig. 9.
    WallTimer wall;
    LatencyBoundedPartitioner part(ctx.perfModel(), ctx.estimator(),
                                   ctx.profile());
    out.partition = part.partition(inputs);
    const double algo_wall = wall.elapsed();

    out.assignment =
        IndexSplitter::split(ctx.profile(), out.partition.rho, num_shards);
    out.timings = estimateUpdateTimings(
        ctx, out.partition.rho, num_shards,
        /*num_profile_queries=*/50000, algo_wall);
    return out;
}

} // namespace vlr::core

/**
 * @file
 * Tests for cluster access-pattern profiling (Section IV-A1).
 */

#include <memory>
#include <numeric>

#include <gtest/gtest.h>

#include "core/access_profile.h"

namespace vlr::core
{
namespace
{

/** Hand-built profile: 4 clusters with known counts/work/bytes. */
AccessProfile
smallProfile()
{
    // Cluster:      0     1     2     3
    // accesses:    10     40    20    30
    // work:       100    200   150    50
    // bytes:     1000   2000  1500   500
    return AccessProfile({10, 40, 20, 30}, {100, 200, 150, 50},
                         {1000, 2000, 1500, 500});
}

TEST(AccessProfile, HotOrderSortsByAccessCount)
{
    const auto p = smallProfile();
    const auto &order = p.hotOrder();
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 1); // 40 accesses
    EXPECT_EQ(order[1], 3); // 30
    EXPECT_EQ(order[2], 2); // 20
    EXPECT_EQ(order[3], 0); // 10
}

TEST(AccessProfile, HotClustersTakesTopFraction)
{
    const auto p = smallProfile();
    const auto half = p.hotClusters(0.5);
    ASSERT_EQ(half.size(), 2u);
    EXPECT_EQ(half[0], 1);
    EXPECT_EQ(half[1], 3);
    EXPECT_EQ(p.numHot(0.5), 2u);
    EXPECT_EQ(p.numHot(0.0), 0u);
    EXPECT_EQ(p.numHot(1.0), 4u);
}

TEST(AccessProfile, HotBitmapMatchesHotClusters)
{
    const auto p = smallProfile();
    const auto bitmap = p.hotBitmap(0.5);
    ASSERT_EQ(bitmap.size(), 4u);
    EXPECT_FALSE(bitmap[0]);
    EXPECT_TRUE(bitmap[1]);
    EXPECT_FALSE(bitmap[2]);
    EXPECT_TRUE(bitmap[3]);
}

TEST(AccessProfile, IndexBytesAccumulatesAlongHotOrder)
{
    const auto p = smallProfile();
    EXPECT_NEAR(p.indexBytes(0.0), 0.0, 1e-12);
    EXPECT_NEAR(p.indexBytes(0.25), 2000.0, 1e-9);        // {1}
    EXPECT_NEAR(p.indexBytes(0.5), 2500.0, 1e-9);         // {1,3}
    EXPECT_NEAR(p.indexBytes(1.0), 5000.0, 1e-9);         // all
    EXPECT_NEAR(p.totalBytes(), 5000.0, 1e-9);
}

TEST(AccessProfile, MeanWorkHitRateUsesAccessTimesWork)
{
    const auto p = smallProfile();
    // mass(c) = accesses * work: {1000, 8000, 3000, 1500}; total 13500.
    EXPECT_NEAR(p.meanWorkHitRate(0.0), 0.0, 1e-12);
    EXPECT_NEAR(p.meanWorkHitRate(0.25), 8000.0 / 13500.0, 1e-9);
    EXPECT_NEAR(p.meanWorkHitRate(0.5), 9500.0 / 13500.0, 1e-9);
    EXPECT_NEAR(p.meanWorkHitRate(1.0), 1.0, 1e-12);
}

TEST(AccessProfile, MeanWorkHitRateMonotone)
{
    const auto p = smallProfile();
    double prev = -1.0;
    for (double rho = 0.0; rho <= 1.0; rho += 0.05) {
        const double v = p.meanWorkHitRate(rho);
        EXPECT_GE(v, prev - 1e-12);
        prev = v;
    }
}

TEST(AccessProfile, AccessorsReturnRawInputs)
{
    const auto p = smallProfile();
    EXPECT_NEAR(p.accessCount(1), 40.0, 1e-12);
    EXPECT_NEAR(p.clusterWork(2), 150.0, 1e-12);
    EXPECT_NEAR(p.clusterBytes(3), 500.0, 1e-12);
    EXPECT_EQ(p.nlist(), 4u);
}

TEST(AccessProfile, ConcentrationCurveEndpoints)
{
    const auto p = smallProfile();
    const auto curve = p.accessConcentration();
    EXPECT_NEAR(evalConcentration(curve, 0.0), 0.0, 1e-9);
    EXPECT_NEAR(evalConcentration(curve, 1.0), 1.0, 1e-9);
    // Top 25% of clusters (cluster 1) has 40% of accesses.
    EXPECT_NEAR(evalConcentration(curve, 0.25), 0.4, 0.01);
}

TEST(AccessProfile, FromPlansMatchesDatasetCalibration)
{
    wl::SyntheticDataset ds(wl::tinySpec());
    ds.buildStats();
    const auto cq = ds.makeCoarseQuantizer();
    wl::QueryGenerator gen(ds, 9);
    const std::size_t nq = 200;
    const auto queries = gen.generate(nq);
    std::vector<double> work(ds.spec().numClusters);
    for (std::size_t c = 0; c < work.size(); ++c)
        work[c] = static_cast<double>(ds.clusterSizes()[c]);
    const auto plans =
        wl::PlanSet::build(*cq, queries, nq, ds.spec().nprobe, work);
    const auto profile = AccessProfile::fromPlans(plans, ds);

    EXPECT_EQ(profile.nlist(), ds.spec().numClusters);
    // Total bytes equal the dataset's paper-scale footprint.
    EXPECT_NEAR(profile.totalBytes(),
                static_cast<double>(ds.spec().paperIndexBytes),
                0.01 * profile.totalBytes());
    // Access counts match the plan aggregation.
    const auto counts =
        plans.clusterAccessCounts(ds.spec().numClusters);
    for (std::size_t c = 0; c < counts.size(); ++c)
        EXPECT_NEAR(profile.accessCount(static_cast<cluster_id_t>(c)),
                    counts[c], 1e-9);
}

TEST(AccessProfile, ZeroAccessClustersRankLast)
{
    AccessProfile p({0, 5, 0, 1}, {10, 10, 10, 10}, {1, 1, 1, 1});
    const auto &order = p.hotOrder();
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 3);
    // Zero-access clusters occupy the tail (any order).
    EXPECT_TRUE((order[2] == 0 && order[3] == 2) ||
                (order[2] == 2 && order[3] == 0));
}

/** rho sweep: indexBytes and meanWorkHitRate are monotone. */
class ProfileMonotoneTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ProfileMonotoneTest, BytesMonotone)
{
    const auto p = smallProfile();
    const double rho = GetParam();
    EXPECT_LE(p.indexBytes(rho), p.indexBytes(std::min(1.0, rho + 0.25)));
    EXPECT_LE(p.meanWorkHitRate(rho),
              p.meanWorkHitRate(std::min(1.0, rho + 0.25)) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProfileMonotoneTest,
                         ::testing::Values(0.0, 0.2, 0.4, 0.6, 0.75));

} // namespace
} // namespace vlr::core

/**
 * @file
 * Tests for the LLM serving simulator: model configs, paged KV cache,
 * roofline performance model, continuous-batching engine and cluster.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "llmsim/cluster.h"
#include "llmsim/engine.h"
#include "llmsim/kv_cache.h"
#include "llmsim/model_config.h"
#include "llmsim/perf_model.h"
#include "simcore/simulator.h"
#include "simgpu/gpu_device.h"

namespace vlr::llm
{
namespace
{

TEST(ModelConfig, PresetsExist)
{
    EXPECT_NEAR(llama3_8b().paramCount, 8e9, 1e9);
    EXPECT_NEAR(qwen3_32b().paramCount, 32.8e9, 2e9);
    EXPECT_NEAR(llama3_70b().paramCount, 70e9, 2e9);
    EXPECT_EQ(llama3_8b().tensorParallel, 1);
    EXPECT_EQ(qwen3_32b().tensorParallel, 2);
    EXPECT_EQ(llama3_70b().tensorParallel, 4);
}

TEST(ModelConfig, WeightBytesAreTwoPerParam)
{
    const auto cfg = llama3_8b();
    EXPECT_EQ(cfg.weightBytes(),
              static_cast<bytes_t>(cfg.paramCount * 2.0));
}

TEST(ModelConfig, KvBytesPerTokenFormula)
{
    const auto cfg = llama3_8b();
    // 2 (K+V) * layers * kv_heads * head_dim * 2 bytes.
    const bytes_t expect = 2ULL * cfg.numLayers * cfg.numKvHeads *
                           cfg.headDim * 2ULL;
    EXPECT_EQ(cfg.kvBytesPerToken(), expect);
}

TEST(ModelConfig, MoeHasFewerActiveParams)
{
    const auto moe = qwen3_30b_moe();
    EXPECT_LT(moe.activeParamCount, moe.paramCount);
}

TEST(ModelConfig, LookupByName)
{
    EXPECT_EQ(llmConfigByName("llama3-8b").name, llama3_8b().name);
    EXPECT_EQ(llmConfigByName("qwen3-32b").name, qwen3_32b().name);
    EXPECT_EQ(llmConfigByName("llama3-70b").name, llama3_70b().name);
    EXPECT_THROW(llmConfigByName("gpt-17"), std::runtime_error);
}

// --- PagedKvCache -------------------------------------------------------

TEST(KvCache, BlockArithmetic)
{
    // 1 MiB capacity, 1 KiB per token, 16-token blocks => 64 blocks.
    PagedKvCache kv(1_MiB, 1_KiB, 16);
    EXPECT_EQ(kv.totalBlocks(), 64u);
    EXPECT_EQ(kv.blockTokens(), 16u);
    EXPECT_EQ(kv.blocksForTokens(1), 1u);
    EXPECT_EQ(kv.blocksForTokens(16), 1u);
    EXPECT_EQ(kv.blocksForTokens(17), 2u);
    EXPECT_EQ(kv.blocksForTokens(0), 0u);
}

TEST(KvCache, MaxConcurrentSequences)
{
    PagedKvCache kv(1_MiB, 1_KiB, 16);
    // 1280 tokens/seq -> 80 blocks -> 64/80 -> 0... use smaller seq:
    // 160 tokens -> 10 blocks -> 6 sequences fit.
    EXPECT_EQ(kv.maxConcurrentSequences(160), 6u);
}

TEST(KvCache, ReserveAndRelease)
{
    PagedKvCache kv(1_MiB, 1_KiB, 16);
    EXPECT_TRUE(kv.tryReserve(60));
    EXPECT_EQ(kv.usedBlocks(), 60u);
    EXPECT_EQ(kv.freeBlocks(), 4u);
    EXPECT_FALSE(kv.tryReserve(5)); // only 4 free
    EXPECT_EQ(kv.usedBlocks(), 60u); // unchanged on failure
    kv.release(30);
    EXPECT_TRUE(kv.tryReserve(5));
}

TEST(KvCache, UtilizationFraction)
{
    PagedKvCache kv(1_MiB, 1_KiB, 16);
    kv.tryReserve(32);
    EXPECT_NEAR(kv.utilization(), 0.5, 1e-12);
}

// --- LlmPerfModel -------------------------------------------------------

TEST(PerfModel, PrefillScalesWithTokens)
{
    LlmPerfModel m(llama3_8b(), gpu::h100Spec(), 1);
    const double t1 = m.prefillSeconds(512);
    const double t2 = m.prefillSeconds(1024);
    EXPECT_GT(t2, t1);
    // Compute-bound: roughly linear in tokens.
    EXPECT_NEAR(t2 / t1, 2.0, 0.4);
}

TEST(PerfModel, DecodeScalesWithContext)
{
    LlmPerfModel m(llama3_8b(), gpu::h100Spec(), 1);
    const double small = m.decodeSeconds(8, 8 * 1024.0);
    const double large = m.decodeSeconds(8, 8 * 16384.0);
    EXPECT_GT(large, small);
}

TEST(PerfModel, TensorParallelSpeedsUpPrefill)
{
    LlmPerfModel tp1(llama3_70b(), gpu::h100Spec(), 1);
    LlmPerfModel tp4(llama3_70b(), gpu::h100Spec(), 4);
    EXPECT_LT(tp4.prefillSeconds(1024), tp1.prefillSeconds(1024));
}

TEST(PerfModel, StepOverheadPositive)
{
    LlmPerfModel m(qwen3_32b(), gpu::h100Spec(), 2);
    EXPECT_GT(m.stepOverheadSeconds(), 0.0);
    // Decode of an empty batch still costs at least the overhead.
    EXPECT_GE(m.decodeSeconds(1, 1024.0), m.stepOverheadSeconds());
}

TEST(PerfModel, BiggerModelIsSlower)
{
    LlmPerfModel small(llama3_8b(), gpu::h100Spec(), 1);
    LlmPerfModel big(llama3_70b(), gpu::h100Spec(), 1);
    EXPECT_GT(big.prefillSeconds(1024), small.prefillSeconds(1024));
    EXPECT_GT(big.decodeSeconds(4, 4096.0),
              small.decodeSeconds(4, 4096.0));
}

// --- LlmEngine ------------------------------------------------------------

struct EngineFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        dev_ = std::make_unique<gpu::GpuDevice>(0, gpu::h100Spec());
        gpus_ = {dev_.get()};
    }

    LlmRequestPtr
    makeRequest(std::uint64_t id, double arrival = 0.0,
                std::size_t prompt = 1024, std::size_t output = 32)
    {
        auto req = std::make_shared<LlmRequest>();
        req->id = id;
        req->arrivalTime = arrival;
        req->enqueueTime = arrival;
        req->promptTokens = prompt;
        req->outputTokens = output;
        return req;
    }

    sim::Simulator sim_;
    std::unique_ptr<gpu::GpuDevice> dev_;
    std::vector<gpu::GpuDevice *> gpus_;
};

TEST_F(EngineFixture, SingleRequestCompletes)
{
    LlmEngine engine(sim_, gpus_, llama3_8b());
    auto req = makeRequest(1);
    engine.enqueue(req);
    sim_.run();
    EXPECT_TRUE(req->done());
    EXPECT_GE(req->firstTokenTime, 0.0);
    EXPECT_GT(req->finishTime, req->firstTokenTime);
    EXPECT_EQ(req->generated, 32u);
    EXPECT_EQ(engine.completedCount(), 1u);
}

TEST_F(EngineFixture, TimelineOrdering)
{
    LlmEngine engine(sim_, gpus_, llama3_8b());
    auto req = makeRequest(1, 0.0);
    engine.enqueue(req);
    sim_.run();
    EXPECT_GE(req->prefillStartTime, req->enqueueTime);
    EXPECT_GE(req->firstTokenTime, req->prefillStartTime);
    EXPECT_GT(req->prefillSeconds, 0.0);
}

TEST_F(EngineFixture, FirstTokenCallbackFires)
{
    LlmEngine engine(sim_, gpus_, llama3_8b());
    int first = 0, finish = 0;
    engine.onFirstToken = [&](const LlmRequestPtr &) { ++first; };
    engine.onFinish = [&](const LlmRequestPtr &) { ++finish; };
    engine.enqueue(makeRequest(1));
    engine.enqueue(makeRequest(2));
    sim_.run();
    EXPECT_EQ(first, 2);
    EXPECT_EQ(finish, 2);
}

TEST_F(EngineFixture, ContinuousBatchingSharesDecodes)
{
    // Two concurrent requests must finish sooner than strictly serial
    // execution of the two.
    LlmEngine engine(sim_, gpus_, llama3_8b());
    auto a = makeRequest(1, 0.0, 512, 64);
    auto b = makeRequest(2, 0.0, 512, 64);
    engine.enqueue(a);
    engine.enqueue(b);
    sim_.run();

    sim::Simulator sim2;
    gpu::GpuDevice dev2(0, gpu::h100Spec());
    std::vector<gpu::GpuDevice *> gpus2 = {&dev2};
    LlmEngine serial(sim2, gpus2, llama3_8b());
    auto c = makeRequest(3, 0.0, 512, 64);
    serial.enqueue(c);
    sim2.run();
    const double single = c->finishTime;
    EXPECT_LT(std::max(a->finishTime, b->finishTime), 2.0 * single);
}

TEST_F(EngineFixture, KvPressureLimitsConcurrency)
{
    // Tiny KV space: requests must wait for blocks.
    auto cfg = llama3_8b();
    gpu::GpuSpec spec = gpu::h100Spec();
    gpu::GpuDevice dev(0, spec);
    // Consume most memory with a huge index shard.
    const bytes_t kv_for_two =
        cfg.kvBytesPerToken() * (1024 + 32) * 2;
    dev.setIndexBytes(dev.kvCacheBytes() - cfg.weightBytes() -
                      kv_for_two);
    std::vector<gpu::GpuDevice *> gpus = {&dev};
    LlmEngine engine(sim_, gpus, cfg);
    EXPECT_LE(engine.kvCache().maxConcurrentSequences(1024 + 32), 2u);

    std::vector<LlmRequestPtr> reqs;
    for (int i = 0; i < 6; ++i) {
        reqs.push_back(makeRequest(i));
        engine.enqueue(reqs.back());
    }
    sim_.run();
    for (const auto &r : reqs)
        EXPECT_TRUE(r->done());
}

TEST_F(EngineFixture, RetrievalContentionSlowsSteps)
{
    // Saturate the GPU with retrieval occupancy for a long window; the
    // same workload must take longer than on an idle GPU.
    auto run_with_occupancy = [&](double occ) {
        sim::Simulator sim;
        gpu::GpuDevice dev(0, gpu::h100Spec());
        if (occ > 0.0)
            dev.addRetrievalInterval(0.0, 1e3, occ);
        std::vector<gpu::GpuDevice *> gpus = {&dev};
        LlmEngine engine(sim, gpus, llama3_8b());
        auto req = std::make_shared<LlmRequest>();
        req->promptTokens = 1024;
        req->outputTokens = 64;
        engine.enqueue(req);
        sim.run();
        return req->finishTime;
    };
    const double idle = run_with_occupancy(0.0);
    const double contended = run_with_occupancy(0.8);
    EXPECT_GT(contended, idle * 1.2);
}

TEST_F(EngineFixture, RefreshKvCapacityReflectsIndexChange)
{
    LlmEngine engine(sim_, gpus_, llama3_8b());
    const auto blocks_before = engine.kvCache().totalBlocks();
    dev_->setIndexBytes(10_GiB);
    engine.refreshKvCapacity();
    EXPECT_LT(engine.kvCache().totalBlocks(), blocks_before);
}

// --- LlmCluster ------------------------------------------------------------

TEST(LlmCluster, TensorParallelGrouping)
{
    sim::Simulator sim;
    std::vector<std::unique_ptr<gpu::GpuDevice>> devs;
    std::vector<gpu::GpuDevice *> ptrs;
    for (int i = 0; i < 8; ++i) {
        devs.push_back(
            std::make_unique<gpu::GpuDevice>(i, gpu::h100Spec()));
        ptrs.push_back(devs.back().get());
    }
    LlmCluster tp4(sim, ptrs, llama3_70b()); // TP=4 -> 2 instances
    EXPECT_EQ(tp4.numInstances(), 2u);

    LlmCluster tp1(sim, ptrs, llama3_8b()); // TP=1 -> 8 instances
    EXPECT_EQ(tp1.numInstances(), 8u);
}

TEST(LlmCluster, LeftoverGpusStayIdle)
{
    sim::Simulator sim;
    std::vector<std::unique_ptr<gpu::GpuDevice>> devs;
    std::vector<gpu::GpuDevice *> ptrs;
    for (int i = 0; i < 7; ++i) { // 7 GPUs, TP=4 -> 1 instance
        devs.push_back(
            std::make_unique<gpu::GpuDevice>(i, gpu::h100Spec()));
        ptrs.push_back(devs.back().get());
    }
    LlmCluster cluster(sim, ptrs, llama3_70b());
    EXPECT_EQ(cluster.numInstances(), 1u);
}

TEST(LlmCluster, DispatchBalancesLoad)
{
    sim::Simulator sim;
    std::vector<std::unique_ptr<gpu::GpuDevice>> devs;
    std::vector<gpu::GpuDevice *> ptrs;
    for (int i = 0; i < 2; ++i) {
        devs.push_back(
            std::make_unique<gpu::GpuDevice>(i, gpu::h100Spec()));
        ptrs.push_back(devs.back().get());
    }
    LlmCluster cluster(sim, ptrs, llama3_8b()); // 2 instances
    int finished = 0;
    cluster.setOnFinish([&](const LlmRequestPtr &) { ++finished; });
    for (int i = 0; i < 10; ++i) {
        auto req = std::make_shared<LlmRequest>();
        req->id = i;
        req->promptTokens = 512;
        req->outputTokens = 16;
        cluster.dispatch(req);
    }
    // Both instances must have received work.
    EXPECT_GT(cluster.engine(0).load() + cluster.engine(0).runningCount(),
              0u);
    EXPECT_GT(cluster.engine(1).load() + cluster.engine(1).runningCount(),
              0u);
    sim.run();
    EXPECT_EQ(finished, 10);
    EXPECT_EQ(cluster.completedCount(), 10u);
}

// --- measurePeakThroughput --------------------------------------------------

TEST(PeakThroughput, PositiveAndOrdered)
{
    const double small = measurePeakThroughput(
        llama3_8b(), gpu::l40sSpec(), 8, 1024, 256, 128);
    EXPECT_GT(small, 1.0);
    // 70B on the same node must be slower than 8B.
    const double big = measurePeakThroughput(
        llama3_70b(), gpu::h100Spec(), 8, 1024, 256, 128);
    const double small_h100 = measurePeakThroughput(
        llama3_8b(), gpu::h100Spec(), 8, 1024, 256, 128);
    EXPECT_LT(big, small_h100);
}

TEST(PeakThroughput, MoreGpusMoreThroughput)
{
    const double four = measurePeakThroughput(
        qwen3_32b(), gpu::h100Spec(), 4, 1024, 256, 128);
    const double eight = measurePeakThroughput(
        qwen3_32b(), gpu::h100Spec(), 8, 1024, 256, 128);
    EXPECT_GT(eight, four * 1.5);
}

TEST(PeakThroughput, LongerOutputsLowerThroughput)
{
    const double short_out = measurePeakThroughput(
        llama3_8b(), gpu::h100Spec(), 2, 1024, 128, 128);
    const double long_out = measurePeakThroughput(
        llama3_8b(), gpu::h100Spec(), 2, 1024, 512, 128);
    EXPECT_GT(short_out, long_out);
}

} // namespace
} // namespace vlr::llm

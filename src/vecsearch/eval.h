/**
 * @file
 * Retrieval quality metrics: recall@k and NDCG@k. The paper fixes nprobe
 * so the system operates at 0.91 NDCG@50 (Section V-A); these utilities
 * verify our indexes reach comparable quality regimes.
 */

#ifndef VLR_VECSEARCH_EVAL_H
#define VLR_VECSEARCH_EVAL_H

#include <span>
#include <vector>

#include "vecsearch/topk.h"

namespace vlr::vs
{

/**
 * recall@k: fraction of the true top-k ids found in the approximate
 * top-k, averaged over queries.
 */
double recallAtK(std::span<const std::vector<SearchHit>> results,
                 std::span<const std::vector<SearchHit>> ground_truth,
                 std::size_t k);

/**
 * NDCG@k with binary relevance: a result is relevant iff it appears in
 * the exact top-k; discount 1/log2(rank+2), normalized by the ideal DCG.
 */
double ndcgAtK(std::span<const std::vector<SearchHit>> results,
               std::span<const std::vector<SearchHit>> ground_truth,
               std::size_t k);

} // namespace vlr::vs

#endif // VLR_VECSEARCH_EVAL_H

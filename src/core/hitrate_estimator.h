/**
 * @file
 * Tail-query hit-rate estimation (paper Section IV-A2).
 *
 * Per-query hit rates at a cache coverage rho are modeled as
 * Beta-distributed. The mean comes from the access profile; the variance
 * is approximated as sigma^2 ~= 4 * sigma_max^2 * eta * (1 - eta) where
 * sigma_max^2 is the empirical variance profiled at mean hit rate 0.5.
 * The expected minimum hit rate in a batch of size B is the Beta
 * first-order statistic (Eq. 2), and HitRate2Coverage numerically
 * inverts rho -> eta_min(rho, B).
 */

#ifndef VLR_CORE_HITRATE_ESTIMATOR_H
#define VLR_CORE_HITRATE_ESTIMATOR_H

#include <vector>

#include "core/access_profile.h"
#include "workload/plans.h"

namespace vlr::core
{

class HitRateEstimator
{
  public:
    /**
     * Profiles the empirical mean/variance of per-query hit rates over
     * a coverage grid using the calibration plans, then locks in
     * sigma_max^2 at the coverage where the mean crosses 0.5.
     */
    HitRateEstimator(const AccessProfile &profile,
                     const wl::PlanSet &train_plans,
                     std::size_t grid_points = 101);

    /** Empirical mean hit rate at coverage rho (grid-interpolated). */
    double meanHitRate(double rho) const;

    /** Empirical per-query hit-rate variance at rho (for validation). */
    double empiricalVariance(double rho) const;

    /** Profiled variance at mean 0.5. */
    double sigmaMaxSq() const { return sigmaMaxSq_; }

    /** The paper's parabola approximation of the variance. */
    double varianceApprox(double mean) const;

    /**
     * Expected minimum hit rate in a batch of B queries at coverage rho
     * (paper Eq. 2 on the fitted Beta distribution).
     */
    double etaMin(double rho, std::size_t batch) const;

    /**
     * Smallest coverage rho with etaMin(rho, batch) >= eta_target;
     * returns 1.0 when the target is unreachable (paper's
     * HitRate2Coverage).
     */
    double hitRate2Coverage(double eta_target, std::size_t batch) const;

    /** Coverage grid used for profiling (for validation benches). */
    const std::vector<double> &gridCoverage() const { return gridRho_; }
    const std::vector<double> &gridMean() const { return gridMean_; }
    const std::vector<double> &gridVariance() const { return gridVar_; }

  private:
    std::vector<double> gridRho_;
    std::vector<double> gridMean_;
    std::vector<double> gridVar_;
    double sigmaMaxSq_ = 0.0;

    double interp(const std::vector<double> &ys, double rho) const;
};

} // namespace vlr::core

#endif // VLR_CORE_HITRATE_ESTIMATOR_H

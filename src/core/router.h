/**
 * @file
 * Query router (paper Section IV-B1).
 *
 * Uses the splitter's mapping tables to send each probe to the shard
 * that actually holds the cluster, pruning non-resident probes so GPU
 * kernels launch only necessary blocks. The unpruned mode reproduces
 * Faiss IndexIVFShards semantics: every shard receives the full nprobe
 * for every query and pays block-scheduling cost for clusters it does
 * not hold.
 */

#ifndef VLR_CORE_ROUTER_H
#define VLR_CORE_ROUTER_H

#include <span>
#include <vector>

#include "core/splitter.h"
#include "workload/plans.h"

namespace vlr::core
{

/** Aggregate GPU work routed to one shard for a batch. */
struct ShardLoad
{
    /** Launched (query, cluster) pairs, including pruned-away waste. */
    std::size_t pairs = 0;
    /** Paper-scale vectors of resident clusters actually scanned. */
    double workVectors = 0.0;
    /** Queries with at least one resident probe on this shard. */
    std::size_t queries = 0;
};

/** Routed view of one query within a batch. */
struct RoutedQuery
{
    /** Scan work fraction left on the CPU (1 - hit rate). */
    double cpuWorkFraction = 1.0;
    /** Work-weighted hit rate. */
    double hitRate = 0.0;
    /** Shards holding at least one of this query's probes. */
    std::vector<shard_id_t> shardsUsed;
    /** Number of CPU-resident probes. */
    std::size_t cpuProbes = 0;
    /** Number of GPU-resident probes. */
    std::size_t gpuProbes = 0;
};

/** Routed view of a whole batch. */
struct RoutedBatch
{
    std::vector<RoutedQuery> queries;
    std::vector<ShardLoad> shards;
    double minHitRate = 1.0;
    double meanHitRate = 0.0;

    std::size_t size() const { return queries.size(); }
};

class Router
{
  public:
    /**
     * @param assignment shard placement (may be empty => CPU only).
     * @param prune_probes true for VectorLiteRAG's pruned routing;
     *        false reproduces IndexIVFShards full-nprobe launches.
     */
    Router(const ShardAssignment &assignment, bool prune_probes);

    /** Route a batch of query plans. */
    RoutedBatch route(std::span<const wl::QueryPlan *const> batch) const;

    bool prunesProbes() const { return prune_; }
    const ShardAssignment &assignment() const { return assignment_; }

  private:
    const ShardAssignment &assignment_;
    bool prune_;
};

} // namespace vlr::core

#endif // VLR_CORE_ROUTER_H

#include "simgpu/gpu_device.h"

#include <algorithm>

#include "common/log.h"

namespace vlr::gpu
{

GpuDevice::GpuDevice(int id, GpuSpec spec)
    : id_(id), spec_(std::move(spec))
{
}

void
GpuDevice::reserveWeights(bytes_t bytes)
{
    weights_ = bytes;
    if (kvCacheBytes() == 0)
        fatal("GpuDevice: weights + index exceed device memory on gpu " +
              std::to_string(id_));
}

void
GpuDevice::setIndexBytes(bytes_t bytes)
{
    index_ = bytes;
    if (weights_ + index_ > spec_.memBytes)
        fatal("GpuDevice: index shard does not fit on gpu " +
              std::to_string(id_));
}

bytes_t
GpuDevice::kvCacheBytes() const
{
    const auto reserve = static_cast<bytes_t>(
        static_cast<double>(spec_.memBytes) * spec_.memReserveFraction);
    const bytes_t used = weights_ + index_ + reserve;
    return used >= spec_.memBytes ? 0 : spec_.memBytes - used;
}

void
GpuDevice::addRetrievalInterval(double start, double end, double occupancy)
{
    if (end <= start)
        return;
    intervals_.push_back({start, end, std::clamp(occupancy, 0.0, 1.0)});
}

double
GpuDevice::retrievalOccupancyOver(double start, double end) const
{
    if (end <= start)
        return 0.0;
    double weighted = 0.0;
    for (const auto &iv : intervals_) {
        const double lo = std::max(start, iv.start);
        const double hi = std::min(end, iv.end);
        if (hi > lo)
            weighted += (hi - lo) * iv.occupancy;
    }
    return std::min(1.0, weighted / (end - start));
}

double
GpuDevice::retrievalBusySeconds() const
{
    double acc = 0.0;
    for (const auto &iv : intervals_)
        acc += iv.end - iv.start;
    return acc;
}

void
GpuDevice::pruneIntervals(double before)
{
    auto it = std::remove_if(intervals_.begin(), intervals_.end(),
                             [before](const Interval &iv) {
                                 return iv.end < before;
                             });
    intervals_.erase(it, intervals_.end());
}

} // namespace vlr::gpu
